// Simulated-GPU kernel tests: p-Thomas, tiled PCR kernel (all window
// variants, fusion), and the Davidson/Zhang/CR baselines — all validated
// against the host reference solvers.

#include <gtest/gtest.h>

#include <vector>

#include "gpu_solvers/cr_kernel.hpp"
#include "gpu_solvers/davidson.hpp"
#include "gpu_solvers/pthomas_kernel.hpp"
#include "gpu_solvers/tiled_pcr_kernel.hpp"
#include "gpu_solvers/zhang_pcr_thomas.hpp"
#include "gpusim/device_spec.hpp"
#include "tridiag/lu_pivot.hpp"
#include "tridiag/pcr.hpp"
#include "util/stats.hpp"
#include "workloads/generators.hpp"

namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;
namespace gp = tridsolve::gpu;
namespace gs = tridsolve::gpusim;

namespace {

td::SystemBatch<double> make_batch(std::size_t m, std::size_t n,
                                   td::Layout layout = td::Layout::contiguous,
                                   std::uint64_t seed = 7) {
  return wl::make_batch<double>(wl::Kind::random_dominant, m, n, layout, seed);
}

/// Reference solutions for every system of a batch, via pivoting LU.
std::vector<std::vector<double>> reference_solutions(
    const td::SystemBatch<double>& batch) {
  std::vector<std::vector<double>> xs(batch.num_systems());
  auto copy = batch.clone();
  for (std::size_t m = 0; m < batch.num_systems(); ++m) {
    xs[m].resize(batch.system_size());
    auto sys = copy.system(m);
    EXPECT_TRUE(td::lu_gtsv<double>(sys, td::StridedView<double>(
                                             xs[m].data(), xs[m].size(), 1))
                    .ok());
  }
  return xs;
}

void expect_batch_solved(const td::SystemBatch<double>& solved,
                         const std::vector<std::vector<double>>& ref,
                         double tol = 1e-9) {
  for (std::size_t m = 0; m < solved.num_systems(); ++m) {
    for (std::size_t i = 0; i < solved.system_size(); ++i) {
      ASSERT_NEAR(solved.d()[solved.index(m, i)], ref[m][i], tol)
          << "m=" << m << " i=" << i;
    }
  }
}

}  // namespace

TEST(PthomasKernel, SolvesInterleavedBatch) {
  const auto dev = gs::gtx480();
  auto batch = make_batch(64, 37, td::Layout::interleaved);
  const auto ref = reference_solutions(batch);

  std::vector<td::SystemRef<double>> systems;
  for (std::size_t m = 0; m < batch.num_systems(); ++m) {
    systems.push_back(batch.system(m));
  }
  gp::pthomas_solve<double>(dev, systems);
  expect_batch_solved(batch, ref);
}

TEST(PthomasKernel, InterleavedCoalescesContiguousDoesNot) {
  const auto dev = gs::gtx480();
  auto inter = make_batch(256, 64, td::Layout::interleaved);
  auto cont = make_batch(256, 64, td::Layout::contiguous);

  auto run = [&](td::SystemBatch<double>& b) {
    std::vector<td::SystemRef<double>> systems;
    for (std::size_t m = 0; m < b.num_systems(); ++m) {
      systems.push_back(b.system(m));
    }
    return gp::pthomas_solve<double>(dev, systems);
  };
  const auto si = run(inter);
  const auto sc = run(cont);
  // Same useful bytes, wildly different transaction counts (paper §III.B).
  EXPECT_EQ(si.forward.costs.bytes_requested, sc.forward.costs.bytes_requested);
  EXPECT_GT(sc.forward.costs.transactions, 5 * si.forward.costs.transactions);
}

TEST(PthomasKernel, XoutRedirectsSolution) {
  const auto dev = gs::gtx480();
  auto batch = make_batch(8, 33, td::Layout::interleaved);
  const auto ref = reference_solutions(batch);
  std::vector<double> x(8 * 33, 0.0);

  std::vector<td::SystemRef<double>> systems;
  std::vector<td::StridedView<double>> xout;
  for (std::size_t m = 0; m < 8; ++m) {
    systems.push_back(batch.system(m));
    xout.emplace_back(x.data() + m, std::size_t{33}, std::ptrdiff_t{8});
  }
  gp::pthomas_solve<double>(dev, systems, xout);
  for (std::size_t m = 0; m < 8; ++m) {
    for (std::size_t i = 0; i < 33; ++i) {
      EXPECT_NEAR(x[i * 8 + m], ref[m][i], 1e-9);
    }
  }
}

class TiledPcrKernelParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned, std::size_t>> {};

TEST_P(TiledPcrKernelParam, MatchesPlainPcrBitExact) {
  const auto [n, k, c] = GetParam();
  const auto dev = gs::gtx480();
  auto batch = make_batch(3, n);
  auto plain = batch.clone();

  std::vector<gp::TiledPcrWork<double>> work;
  for (std::size_t m = 0; m < 3; ++m) {
    work.push_back({batch.system(m), batch.system(m), 0, n});
  }
  gp::TiledPcrConfig cfg;
  cfg.k = k;
  cfg.c = c;
  gp::tiled_pcr_kernel<double>(dev, work, cfg);

  for (std::size_t m = 0; m < 3; ++m) {
    td::pcr_reduce(plain.system(m), k);
  }
  for (std::size_t i = 0; i < batch.total_rows(); ++i) {
    ASSERT_EQ(batch.a()[i], plain.a()[i]) << i;
    ASSERT_EQ(batch.b()[i], plain.b()[i]) << i;
    ASSERT_EQ(batch.c()[i], plain.c()[i]) << i;
    ASSERT_EQ(batch.d()[i], plain.d()[i]) << i;
  }
}

using TiledShape = std::tuple<std::size_t, unsigned, std::size_t>;
INSTANTIATE_TEST_SUITE_P(Shapes, TiledPcrKernelParam,
                         ::testing::Values(TiledShape{64, 2, 1},
                                           TiledShape{64, 3, 2},
                                           TiledShape{100, 2, 1},
                                           TiledShape{256, 5, 1},
                                           TiledShape{256, 6, 1},
                                           TiledShape{1000, 4, 2},
                                           TiledShape{31, 3, 1},
                                           TiledShape{513, 8, 1}));

TEST(TiledPcrKernel, ZeroRedundantLoadsWholeSystem) {
  const auto dev = gs::gtx480();
  const std::size_t n = 2048;
  auto batch = make_batch(2, n);
  std::vector<gp::TiledPcrWork<double>> work;
  for (std::size_t m = 0; m < 2; ++m) {
    work.push_back({batch.system(m), batch.system(m), 0, n});
  }
  gp::TiledPcrConfig cfg;
  cfg.k = 6;
  const auto stats = gp::tiled_pcr_kernel<double>(dev, work, cfg);
  EXPECT_EQ(stats.row_loads, 2 * n);
  EXPECT_EQ(stats.redundant_loads(), 0u);
  EXPECT_EQ(stats.eliminations, 6u * 2u * n);
}

TEST(TiledPcrKernel, SplitSystemPaysHaloLoads) {
  const auto dev = gs::gtx480();
  const std::size_t n = 4096;
  auto batch = make_batch(1, n);
  td::SystemBatch<double> out(1, n, td::Layout::contiguous);
  const std::size_t regions = 4;
  std::vector<gp::TiledPcrWork<double>> work;
  for (std::size_t r = 0; r < regions; ++r) {
    work.push_back({batch.system(0), out.system(0), r * (n / regions),
                    (r + 1) * (n / regions)});
  }
  gp::TiledPcrConfig cfg;
  cfg.k = 5;
  const auto stats = gp::tiled_pcr_kernel<double>(dev, work, cfg);
  // Interior regions warm up over real rows: redundant loads > 0 but
  // bounded by regions * warm-up window.
  EXPECT_GT(stats.redundant_loads(), 0u);
  EXPECT_LE(stats.redundant_loads(), regions * 2 * (cfg.c << cfg.k));

  // And the values still match plain PCR.
  auto plain = batch.clone();
  td::pcr_reduce(plain.system(0), 5);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out.d()[i], plain.d()[i]) << i;
    ASSERT_EQ(out.b()[i], plain.b()[i]) << i;
  }
}

TEST(TiledPcrKernel, MultiWindowBlocksMatchToo) {
  const auto dev = gs::gtx480();
  const std::size_t n = 300;
  auto batch = make_batch(8, n);
  auto plain = batch.clone();
  std::vector<gp::TiledPcrWork<double>> work;
  for (std::size_t m = 0; m < 8; ++m) {
    work.push_back({batch.system(m), batch.system(m), 0, n});
  }
  gp::TiledPcrConfig cfg;
  cfg.k = 4;
  cfg.systems_per_block = 3;  // Fig. 11(c)
  const auto stats = gp::tiled_pcr_kernel<double>(dev, work, cfg);
  EXPECT_EQ(stats.launch.config.grid_blocks, 3u);  // ceil(8/3)

  for (std::size_t m = 0; m < 8; ++m) td::pcr_reduce(plain.system(m), 4);
  for (std::size_t i = 0; i < batch.total_rows(); ++i) {
    ASSERT_EQ(batch.d()[i], plain.d()[i]) << i;
  }
}

TEST(TiledPcrKernel, MultiplexedWindowsReduceRounds) {
  // Fig. 11(c)'s point: G windows per block issue G x the loads per round,
  // so the same work takes ~G x fewer serialized rounds.
  const auto dev = gs::gtx480();
  const std::size_t n = 1024;
  auto b1 = make_batch(8, n);
  auto b4 = make_batch(8, n);
  auto run = [&](td::SystemBatch<double>& b, std::size_t g) {
    std::vector<gp::TiledPcrWork<double>> work;
    for (std::size_t m = 0; m < 8; ++m) {
      work.push_back({b.system(m), b.system(m), 0, n});
    }
    gp::TiledPcrConfig cfg;
    cfg.k = 5;
    cfg.systems_per_block = g;
    return gp::tiled_pcr_kernel<double>(dev, work, cfg);
  };
  const auto s1 = run(b1, 1);
  const auto s4 = run(b4, 4);
  const double rounds_per_warp_1 =
      static_cast<double>(s1.launch.costs.rounds_total) / s1.launch.costs.warps;
  const double rounds_per_warp_4 =
      static_cast<double>(s4.launch.costs.rounds_total) / s4.launch.costs.warps;
  // Same rounds per warp per iteration, but 4x fewer warps for the same
  // total loads -> fewer rounds in total per unit of work.
  EXPECT_EQ(s1.launch.costs.loads, s4.launch.costs.loads);
  EXPECT_LT(s4.launch.costs.warps, s1.launch.costs.warps);
  EXPECT_NEAR(rounds_per_warp_4, rounds_per_warp_1, rounds_per_warp_1 * 0.05);
}

TEST(TiledPcrKernel, SharedFootprintMatchesFormula) {
  const auto dev = gs::gtx480();
  const std::size_t n = 512;
  auto batch = make_batch(1, n);
  std::vector<gp::TiledPcrWork<double>> work{
      {batch.system(0), batch.system(0), 0, n}};
  gp::TiledPcrConfig cfg;
  cfg.k = 6;
  const auto stats = gp::tiled_pcr_kernel<double>(dev, work, cfg);
  EXPECT_EQ(stats.launch.costs.shared_peak_bytes,
            gp::tiled_pcr_window_shared_bytes(6, 1, sizeof(double)));
  // Table I bound: cache 3*f(k) + sub-tile S rows of 4 doubles.
  const std::size_t table1_bound =
      (3 * td::pcr_halo(6) + (std::size_t{1} << 6) + 64) * 4 * sizeof(double);
  EXPECT_LE(stats.launch.costs.shared_peak_bytes, table1_bound);
}

TEST(TiledPcrKernel, FusedForwardProducesThomasState) {
  const auto dev = gs::gtx480();
  const std::size_t n = 256;
  const unsigned k = 4;
  auto fused = make_batch(2, n);
  auto ref = fused.clone();

  std::vector<gp::TiledPcrWork<double>> work;
  for (std::size_t m = 0; m < 2; ++m) {
    work.push_back({fused.system(m), fused.system(m), 0, n});
  }
  gp::TiledPcrConfig cfg;
  cfg.k = k;
  cfg.fuse_thomas_forward = true;
  gp::tiled_pcr_kernel<double>(dev, work, cfg);

  // Reference: plain PCR, then Thomas forward on each reduced system.
  for (std::size_t m = 0; m < 2; ++m) {
    auto sys = ref.system(m);
    td::pcr_reduce(sys, k);
    const std::size_t stride = std::size_t{1} << k;
    for (std::size_t r = 0; r < stride; ++r) {
      double cp = 0.0, dp = 0.0;
      for (std::size_t i = r; i < n; i += stride) {
        const double denom = sys.b[i] - cp * sys.a[i];
        const double inv = 1.0 / denom;
        cp = sys.c[i] * inv;
        dp = (sys.d[i] - dp * sys.a[i]) * inv;
        sys.c[i] = cp;
        sys.d[i] = dp;
      }
    }
  }
  for (std::size_t i = 0; i < fused.total_rows(); ++i) {
    ASSERT_EQ(fused.c()[i], ref.c()[i]) << i;
    ASSERT_EQ(fused.d()[i], ref.d()[i]) << i;
  }
}

TEST(TiledPcrKernel, RejectsBadConfigs) {
  const auto dev = gs::gtx480();
  auto batch = make_batch(1, 64);
  std::vector<gp::TiledPcrWork<double>> whole{
      {batch.system(0), batch.system(0), 0, 64}};
  gp::TiledPcrConfig cfg;
  cfg.k = 0;
  EXPECT_THROW(gp::tiled_pcr_kernel<double>(dev, whole, cfg),
               std::invalid_argument);
  cfg.k = 11;  // 2048 threads > block limit
  EXPECT_THROW(gp::tiled_pcr_kernel<double>(dev, whole, cfg),
               std::invalid_argument);

  // In-place split windows are a halo data race.
  std::vector<gp::TiledPcrWork<double>> split{
      {batch.system(0), batch.system(0), 0, 32},
      {batch.system(0), batch.system(0), 32, 64}};
  cfg.k = 3;
  EXPECT_THROW(gp::tiled_pcr_kernel<double>(dev, split, cfg),
               std::invalid_argument);
}

TEST(ZhangKernel, SolvesSmallSystems) {
  const auto dev = gs::gtx480();
  auto batch = make_batch(16, 500);
  const auto ref = reference_solutions(batch);
  gp::zhang_solve<double>(dev, batch);
  expect_batch_solved(batch, ref);
}

TEST(ZhangKernel, RejectsOversizedSystems) {
  const auto dev = gs::gtx480();
  EXPECT_EQ(gp::zhang_max_rows(dev, sizeof(double)), 1536u);
  auto batch = make_batch(1, 2000);
  EXPECT_THROW(gp::zhang_solve<double>(dev, batch), std::invalid_argument);
}

TEST(CrKernel, SolvesVariousSizes) {
  const auto dev = gs::gtx480();
  for (std::size_t n : {1u, 2u, 16u, 100u, 512u, 1000u}) {
    auto batch = make_batch(4, n, td::Layout::contiguous, n);
    const auto ref = reference_solutions(batch);
    gp::cr_kernel_solve<double>(dev, batch);
    expect_batch_solved(batch, ref, 1e-8);
  }
}

TEST(DavidsonSolver, SolvesLargeSystemWithGlobalSteps) {
  const auto dev = gs::gtx480();
  const std::size_t n = 8192;
  auto batch = make_batch(2, n);
  const auto ref = reference_solutions(batch);
  gp::DavidsonOptions opts;
  const auto report = gp::davidson_solve<double>(dev, batch, opts);
  EXPECT_EQ(report.global_steps, 3u);  // 8192 -> 1024 rows per subsystem
  // One launch per global step + the final kernel.
  EXPECT_EQ(report.timeline.segments().size(), 4u);
  expect_batch_solved(batch, ref, 1e-8);
}

TEST(DavidsonSolver, SmallSystemSkipsGlobalSteps) {
  const auto dev = gs::gtx480();
  auto batch = make_batch(8, 512);
  const auto ref = reference_solutions(batch);
  const auto report = gp::davidson_solve<double>(dev, batch);
  EXPECT_EQ(report.global_steps, 0u);
  expect_batch_solved(batch, ref, 1e-9);
}

TEST(DavidsonSolver, PaysLaunchOverheadPerStep) {
  const auto dev = gs::gtx480();
  auto batch = make_batch(1, 1 << 15);  // 32768 -> 5 global steps
  const auto report = gp::davidson_solve<double>(dev, batch);
  EXPECT_EQ(report.global_steps, 5u);
  double overhead = 0.0;
  for (const auto& seg : report.timeline.segments()) {
    overhead += seg.stats.timing.overhead_us;
  }
  EXPECT_GE(overhead, 6.0 * dev.kernel_launch_overhead_us * 0.99);
}
