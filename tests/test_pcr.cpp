// PCR tests: reduction invariants (interleaved decoupling), full solve
// accuracy, halo/redundancy formulas, and hybrid PCR+Thomas equivalence.

#include <gtest/gtest.h>

#include <vector>

#include "tridiag/lu_pivot.hpp"
#include "tridiag/pcr.hpp"
#include "tridiag/residual.hpp"
#include "tridiag/thomas.hpp"
#include "util/aligned_buffer.hpp"
#include "util/stats.hpp"
#include "workloads/generators.hpp"

namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;
using tridsolve::util::AlignedBuffer;
using tridsolve::util::Xoshiro256;

namespace {

td::TridiagSystem<double> random_system(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  td::TridiagSystem<double> s(n);
  wl::fill_matrix(wl::Kind::random_dominant, s.ref(), rng);
  wl::fill_rhs_random(s.ref(), rng);
  return s;
}

/// Solve a system by reference LU and return x.
std::vector<double> reference_solution(const td::TridiagSystem<double>& s) {
  auto copy = s.clone();
  std::vector<double> x(s.size());
  auto st = td::lu_gtsv(copy.ref(), td::StridedView<double>(x.data(), x.size(), 1));
  EXPECT_TRUE(st.ok());
  return x;
}

}  // namespace

TEST(Pcr, HaloAndRedundancyFormulas) {
  // f(k) = 2^k - 1 (Eq. 8); g(k) = k 2^k - 2^{k+1} + 2 (Eq. 9).
  EXPECT_EQ(td::pcr_halo(0), 0u);
  EXPECT_EQ(td::pcr_halo(1), 1u);
  EXPECT_EQ(td::pcr_halo(2), 3u);
  EXPECT_EQ(td::pcr_halo(8), 255u);
  EXPECT_EQ(td::pcr_redundant_elims(0), 0u);
  EXPECT_EQ(td::pcr_redundant_elims(1), 0u);   // 1*2 - 4 + 2
  EXPECT_EQ(td::pcr_redundant_elims(2), 2u);   // 2*4 - 8 + 2
  EXPECT_EQ(td::pcr_redundant_elims(3), 10u);  // 3*8 - 16 + 2
  EXPECT_EQ(td::pcr_redundant_elims(4), 34u);
}

TEST(Pcr, OneStepDecouplesEvenOdd) {
  auto s = random_system(64, 11);
  td::pcr_reduce(s.ref(), 1);
  // After one step every row couples only at stride 2: verify by checking
  // the reduced system solves correctly when treated as two independent
  // interleaved systems.
  auto sys = s.ref();
  for (int parity = 0; parity < 2; ++parity) {
    const std::size_t count = (64 - parity + 1) / 2;
    td::SystemRef<double> view{sys.a.subview(parity, count),
                               sys.b.subview(parity, count),
                               sys.c.subview(parity, count),
                               sys.d.subview(parity, count)};
    // stride is still 1 in subview; we need stride 2:
    td::SystemRef<double> half{
        td::StridedView<double>(sys.a.ptr(parity), count, 2),
        td::StridedView<double>(sys.b.ptr(parity), count, 2),
        td::StridedView<double>(sys.c.ptr(parity), count, 2),
        td::StridedView<double>(sys.d.ptr(parity), count, 2)};
    AlignedBuffer<double> x(count);
    EXPECT_TRUE(td::thomas_solve(half, td::StridedView<double>(x.span())).ok());
    (void)view;
  }
}

TEST(Pcr, ReduceThenThomasMatchesReference) {
  for (unsigned k : {1u, 2u, 3u, 5u}) {
    auto s = random_system(200, 31 + k);
    const auto x_ref = reference_solution(s);

    td::pcr_reduce(s.ref(), k);
    const std::size_t stride = std::size_t{1} << k;
    std::vector<double> x(200);
    auto sys = s.ref();
    for (std::size_t r = 0; r < stride && r < 200; ++r) {
      const std::size_t count = (200 - r + stride - 1) / stride;
      td::SystemRef<double> sub{
          td::StridedView<double>(sys.a.ptr(r), count, static_cast<std::ptrdiff_t>(stride)),
          td::StridedView<double>(sys.b.ptr(r), count, static_cast<std::ptrdiff_t>(stride)),
          td::StridedView<double>(sys.c.ptr(r), count, static_cast<std::ptrdiff_t>(stride)),
          td::StridedView<double>(sys.d.ptr(r), count, static_cast<std::ptrdiff_t>(stride))};
      td::StridedView<double> xr(x.data() + r, count, static_cast<std::ptrdiff_t>(stride));
      ASSERT_TRUE(td::thomas_solve(sub, xr).ok());
    }
    EXPECT_LT(tridsolve::util::max_abs_diff(
                  std::span<const double>(x), std::span<const double>(x_ref)),
              1e-9)
        << "k=" << k;
  }
}

TEST(Pcr, FullSolveMatchesReference) {
  for (std::size_t n : {1u, 2u, 3u, 8u, 100u, 255u, 256u, 257u}) {
    auto s = random_system(n, n * 7 + 1);
    const auto x_ref = reference_solution(s);
    AlignedBuffer<double> x(n);
    ASSERT_TRUE(td::pcr_solve(s.ref(), td::StridedView<double>(x.span())).ok())
        << "n=" << n;
    EXPECT_LT(tridsolve::util::max_abs_diff(x.span(), std::span<const double>(x_ref)),
              1e-9)
        << "n=" << n;
  }
}

TEST(Pcr, EliminationCountIsKTimesN) {
  auto s = random_system(128, 3);
  EXPECT_EQ(td::pcr_reduce(s.ref(), 3), 3u * 128u);
}

TEST(Pcr, IdentityRowsAreFixedPoint) {
  // A pure identity system must stay identity through any number of steps.
  td::TridiagSystem<double> s(16);
  for (std::size_t i = 0; i < 16; ++i) {
    s.b()[i] = 1.0;
  }
  td::pcr_reduce(s.ref(), 4);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(s.a()[i], 0.0);
    EXPECT_DOUBLE_EQ(s.b()[i], 1.0);
    EXPECT_DOUBLE_EQ(s.c()[i], 0.0);
    EXPECT_DOUBLE_EQ(s.d()[i], 0.0);
  }
}

TEST(Pcr, CombineMatchesHandComputedStep) {
  // One CR/PCR elimination on rows with known values (paper Eqs. 5-6).
  td::Row<double> lo{0.0, 2.0, 1.0, 4.0};   // row i-1
  td::Row<double> mid{1.0, 3.0, 1.0, 6.0};  // row i
  td::Row<double> hi{1.0, 2.0, 0.0, 5.0};   // row i+1
  const auto out = td::pcr_combine(lo, mid, hi);
  const double k1 = 1.0 / 2.0, k2 = 1.0 / 2.0;
  EXPECT_DOUBLE_EQ(out.a, -0.0 * k1);
  EXPECT_DOUBLE_EQ(out.b, 3.0 - 1.0 * k1 - 1.0 * k2);
  EXPECT_DOUBLE_EQ(out.c, -0.0 * k2);
  EXPECT_DOUBLE_EQ(out.d, 6.0 - 4.0 * k1 - 5.0 * k2);
}

TEST(Pcr, FloatSolveAccuracy) {
  Xoshiro256 rng(8);
  td::TridiagSystem<float> s(128);
  wl::fill_matrix(wl::Kind::toeplitz, s.ref(), rng);
  wl::fill_rhs_random(s.ref(), rng);
  auto copy = s.clone();
  AlignedBuffer<float> x(128);
  ASSERT_TRUE(td::pcr_solve(s.ref(), td::StridedView<float>(x.span())).ok());
  EXPECT_LT(td::relative_residual(td::as_const(copy.ref()),
                                  td::StridedView<const float>(x.data(), 128, 1)),
            1e-5);
}

TEST(Pcr, NonPowerOfTwoSizes) {
  for (std::size_t n : {5u, 17u, 100u, 1000u, 1023u, 1025u}) {
    auto s = random_system(n, n);
    auto copy = s.clone();
    AlignedBuffer<double> x(n);
    ASSERT_TRUE(td::pcr_solve(s.ref(), td::StridedView<double>(x.span())).ok());
    EXPECT_LT(td::relative_residual(td::as_const(copy.ref()),
                                    td::StridedView<const double>(x.data(), n, 1)),
              1e-12)
        << "n=" << n;
  }
}
