// Periodic (cyclic) tridiagonal solver tests: Sherman-Morrison pieces,
// host solve, and the batched GPU composition — validated by the cyclic
// residual (with wraparound corners).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gpu_solvers/periodic_gpu.hpp"
#include "gpusim/device_spec.hpp"
#include "tridiag/periodic.hpp"
#include "tridiag/thomas.hpp"
#include "util/random.hpp"
#include "workloads/generators.hpp"

namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;
namespace gp = tridsolve::gpu;
using tridsolve::util::Xoshiro256;

namespace {

struct PeriodicProblem {
  td::TridiagSystem<double> sys;
  double alpha, beta;
};

PeriodicProblem make_problem(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  PeriodicProblem p{td::TridiagSystem<double>(n), 0.0, 0.0};
  wl::fill_matrix(wl::Kind::random_dominant, p.sys.ref(), rng);
  wl::fill_rhs_random(p.sys.ref(), rng);
  // Corners small enough to keep diagonal dominance.
  p.alpha = tridsolve::util::uniform(rng, -0.2, 0.2);
  p.beta = tridsolve::util::uniform(rng, -0.2, 0.2);
  return p;
}

/// max_i |(A_p x - d)_i| for the cyclic matrix.
double cyclic_residual(const PeriodicProblem& p, std::span<const double> x) {
  const std::size_t n = p.sys.size();
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double r = p.sys.b()[i] * x[i] - p.sys.d()[i];
    r += i > 0 ? p.sys.a()[i] * x[i - 1] : p.alpha * x[n - 1];
    r += i + 1 < n ? p.sys.c()[i] * x[i + 1] : p.beta * x[0];
    worst = std::max(worst, std::abs(r));
  }
  return worst;
}

}  // namespace

TEST(Periodic, CorrectMatrixAndU) {
  auto p = make_problem(8, 1);
  auto work = p.sys.clone();
  const double b0 = work.b()[0];
  const double bn = work.b()[7];
  const double gamma = td::periodic_correct_matrix(work.ref(), p.alpha, p.beta);
  EXPECT_DOUBLE_EQ(gamma, -b0);
  EXPECT_DOUBLE_EQ(work.b()[0], b0 - gamma);
  EXPECT_DOUBLE_EQ(work.b()[7], bn - p.alpha * p.beta / gamma);

  std::vector<double> u(8);
  td::periodic_fill_u(std::span<double>(u), gamma, p.beta);
  EXPECT_DOUBLE_EQ(u[0], gamma);
  EXPECT_DOUBLE_EQ(u[7], p.beta);
  for (std::size_t i = 1; i < 7; ++i) EXPECT_DOUBLE_EQ(u[i], 0.0);
}

class PeriodicSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PeriodicSizes, HostSolveHasTinyCyclicResidual) {
  const std::size_t n = GetParam();
  auto p = make_problem(n, n);
  auto work = p.sys.clone();
  std::vector<double> x(n);
  const auto st = td::periodic_solve(work.ref(), p.alpha, p.beta,
                                     td::StridedView<double>(x.data(), n, 1));
  ASSERT_TRUE(st.ok());
  EXPECT_LT(cyclic_residual(p, x), 1e-11) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, PeriodicSizes,
                         ::testing::Values<std::size_t>(3, 4, 5, 8, 17, 100,
                                                        257, 1024));

TEST(Periodic, ZeroCornersMatchPlainSolve) {
  auto p = make_problem(64, 5);
  p.alpha = p.beta = 0.0;
  auto work = p.sys.clone();
  std::vector<double> x(64);
  ASSERT_TRUE(td::periodic_solve(work.ref(), 0.0, 0.0,
                                 td::StridedView<double>(x.data(), 64, 1))
                  .ok());
  // Plain Thomas on the original.
  auto plain = p.sys.clone();
  std::vector<double> y(64);
  ASSERT_TRUE(td::thomas_solve(plain.ref(), td::StridedView<double>(y.data(), 64, 1))
                  .ok());
  for (std::size_t i = 0; i < 64; ++i) EXPECT_NEAR(x[i], y[i], 1e-11);
}

TEST(Periodic, RejectsTinySystems) {
  auto p = make_problem(2, 7);
  std::vector<double> x(2);
  const auto st = td::periodic_solve(p.sys.ref(), 0.1, 0.1,
                                     td::StridedView<double>(x.data(), 2, 1));
  EXPECT_EQ(st.code, td::SolveCode::bad_size);
}

TEST(PeriodicGpu, BatchedSolveMatchesHost) {
  const auto dev = tridsolve::gpusim::gtx480();
  const std::size_t m_count = 24, n = 400;

  std::vector<PeriodicProblem> problems;
  tridsolve::tridiag::SystemBatch<double> batch(m_count, n,
                                                td::Layout::contiguous);
  std::vector<gp::PeriodicCorners<double>> corners;
  for (std::size_t m = 0; m < m_count; ++m) {
    problems.push_back(make_problem(n, 100 + m));
    auto dst = batch.system(m);
    const auto& src = problems.back().sys;
    for (std::size_t i = 0; i < n; ++i) {
      dst.a[i] = src.a()[i];
      dst.b[i] = src.b()[i];
      dst.c[i] = src.c()[i];
      dst.d[i] = src.d()[i];
    }
    corners.push_back({problems.back().alpha, problems.back().beta});
  }

  const auto report = gp::periodic_solve_gpu<double>(dev, batch, corners);
  ASSERT_TRUE(report.status.ok());
  EXPECT_EQ(report.hybrid.reduced_systems % (2 * m_count), 0u);

  for (std::size_t m = 0; m < m_count; ++m) {
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = batch.d()[batch.index(m, i)];
    EXPECT_LT(cyclic_residual(problems[m], x), 1e-10) << "m=" << m;
  }
}

TEST(PeriodicGpu, ValidatesInputs) {
  const auto dev = tridsolve::gpusim::gtx480();
  tridsolve::tridiag::SystemBatch<double> batch(2, 100, td::Layout::contiguous);
  std::vector<gp::PeriodicCorners<double>> wrong(3, {0.1, 0.1});
  EXPECT_THROW(gp::periodic_solve_gpu<double>(dev, batch, wrong),
               std::invalid_argument);
  tridsolve::tridiag::SystemBatch<double> tiny(2, 2, td::Layout::contiguous);
  std::vector<gp::PeriodicCorners<double>> two(2, {0.1, 0.1});
  EXPECT_THROW(gp::periodic_solve_gpu<double>(dev, tiny, two),
               std::invalid_argument);
}

TEST(PeriodicGpu, FloatPrecision) {
  const auto dev = tridsolve::gpusim::gtx480();
  const std::size_t n = 128;
  Xoshiro256 rng(9);
  tridsolve::tridiag::SystemBatch<float> batch(4, n, td::Layout::contiguous);
  std::vector<gp::PeriodicCorners<float>> corners;
  for (std::size_t m = 0; m < 4; ++m) {
    auto sys = batch.system(m);
    wl::fill_matrix(wl::Kind::toeplitz, sys, rng);
    wl::fill_rhs_random(sys, rng);
    corners.push_back({0.2f, -0.1f});
  }
  auto orig = batch.clone();
  const auto report = gp::periodic_solve_gpu<float>(dev, batch, corners);
  ASSERT_TRUE(report.status.ok());
  for (std::size_t m = 0; m < 4; ++m) {
    // Cyclic residual in float tolerance.
    auto o = orig.system(m);
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double r = static_cast<double>(o.b[i]) * batch.d()[batch.index(m, i)] -
                 static_cast<double>(o.d[i]);
      r += i > 0 ? static_cast<double>(o.a[i]) * batch.d()[batch.index(m, i - 1)]
                 : 0.2 * batch.d()[batch.index(m, n - 1)];
      r += i + 1 < n
               ? static_cast<double>(o.c[i]) * batch.d()[batch.index(m, i + 1)]
               : -0.1 * batch.d()[batch.index(m, 0)];
      worst = std::max(worst, std::abs(r));
    }
    EXPECT_LT(worst, 1e-3) << "m=" << m;
  }
}
