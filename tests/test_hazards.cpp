// Tests for the shared-memory hazard detector (gpusim/hazard_tracker.hpp
// + the HazardMode wiring in the execution engine).
//
// Two halves, mirroring the detector's contract:
//  * Negative paths: deliberately defective kernels — racy same-word
//    writes, a missing barrier between neighbour write/read, a
//    write-after-read overlap, an out-of-bounds arena access, and
//    divergent intra-phase barriers — are each flagged with exactly the
//    right category (and only that category), deterministically for any
//    worker count; fatal mode turns the finding into an exception.
//  * Read-only guarantee: every shipping solver kind runs clean under
//    detect, with outputs and simulated time bit-identical to a run with
//    detection off — the PR-3-style "instrumentation changes nothing"
//    pin, extended to hazard checking. This mechanically certifies the
//    paper's claim that the buffered sliding window is race-free.

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "gpu_solvers/registry.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/exec_engine.hpp"
#include "gpusim/launch.hpp"
#include "obs/metrics.hpp"
#include "tridiag/layout.hpp"
#include "workloads/generators.hpp"

namespace gs = tridsolve::gpusim;
namespace gp = tridsolve::gpu;
namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;
namespace obs = tridsolve::obs;

namespace {

constexpr int kThreads = 32;

/// Launch `body` on a small grid with the given hazard mode.
template <typename F>
gs::LaunchStats run_hazard_kernel(gs::HazardMode mode, F&& body,
                                  std::size_t grid = 1) {
  const auto dev = gs::gtx480();
  gs::LaunchConfig cfg;
  cfg.grid_blocks = grid;
  cfg.block_threads = kThreads;
  cfg.hazards = mode;
  // Wrap so plain function references work (launch passes the callable
  // through a void* user pointer, which function pointers cannot use).
  return gs::launch(dev, cfg,
                    [&](gs::BlockContext& ctx) { body(ctx); });
}

// ---- The seeded-defect kernels ---------------------------------------

/// Racy kernel: every thread of the block writes shared word 0 in the
/// same barrier interval. Pure WAW (no shared reads at all).
void racy_waw_kernel(gs::BlockContext& ctx) {
  auto s = ctx.shared<float>(kThreads);
  ctx.phase([&](gs::ThreadCtx& t) {
    t.sstore(&s[0], static_cast<float>(t.tid()));
  });
}

/// Missing-barrier kernel: each thread writes its own slot, then reads
/// its left neighbour's slot *in the same phase* — the classic bug of
/// dropping the __syncthreads() between produce and consume. Pure RAW.
void missing_barrier_kernel(gs::BlockContext& ctx) {
  auto s = ctx.shared<float>(kThreads);
  ctx.phase([&](gs::ThreadCtx& t) {
    t.sstore(&s[t.tid()], static_cast<float>(t.tid()));
    if (t.tid() > 0) (void)t.sload(&s[t.tid() - 1]);
  });
}

/// WAR kernel: each thread reads its right neighbour's slot, then writes
/// its own — overwriting, within the interval, a word another thread
/// already read. Pure WAR.
void war_kernel(gs::BlockContext& ctx) {
  auto s = ctx.shared<float>(kThreads + 1);
  ctx.phase([&](gs::ThreadCtx& t) {
    (void)t.sload(&s[t.tid() + 1]);
    t.sstore(&s[t.tid()], static_cast<float>(t.tid()));
  });
}

/// OOB kernel: a shared access past the allocated arena region (the span
/// has kThreads floats; slot kThreads is beyond the high-water mark).
/// The arena's backing store is zero-initialised and sized to device
/// capacity, so the stray read is memory-safe on the host — only wrong.
void oob_kernel(gs::BlockContext& ctx) {
  auto s = ctx.shared<float>(kThreads);
  ctx.phase([&](gs::ThreadCtx& t) {
    if (t.tid() == 0) (void)t.sload(s.data() + kThreads);
  });
}

/// Divergence kernel: half the block executes an intra-phase barrier the
/// other half skips — on hardware, a hang (or undefined behaviour).
void divergence_kernel(gs::BlockContext& ctx) {
  auto s = ctx.shared<float>(kThreads);
  ctx.phase([&](gs::ThreadCtx& t) {
    t.sstore(&s[t.tid()], 1.0f);
    if (t.tid() < kThreads / 2) t.sync();
  });
}

/// Clean kernel: the produce / barrier / consume discipline done right.
void clean_kernel(gs::BlockContext& ctx) {
  auto s = ctx.shared<float>(kThreads);
  ctx.phase([&](gs::ThreadCtx& t) {
    t.sstore(&s[t.tid()], static_cast<float>(t.tid()));
  });
  ctx.phase([&](gs::ThreadCtx& t) {
    if (t.tid() > 0) (void)t.sload(&s[t.tid() - 1]);
  });
}

void expect_only(const gs::HazardCounts& hz, std::size_t raw, std::size_t war,
                 std::size_t waw, std::size_t oob, std::size_t divergence,
                 const std::string& what) {
  EXPECT_EQ(hz.raw, raw) << what;
  EXPECT_EQ(hz.war, war) << what;
  EXPECT_EQ(hz.waw, waw) << what;
  EXPECT_EQ(hz.oob, oob) << what;
  EXPECT_EQ(hz.divergence, divergence) << what;
}

}  // namespace

TEST(HazardMode, ParsesAndNames) {
  EXPECT_EQ(gs::parse_hazard_mode("off"), gs::HazardMode::off);
  EXPECT_EQ(gs::parse_hazard_mode("detect"), gs::HazardMode::detect);
  EXPECT_EQ(gs::parse_hazard_mode("fatal"), gs::HazardMode::fatal);
  // Boolean-switch spellings of --check-hazards mean detect.
  EXPECT_EQ(gs::parse_hazard_mode("true"), gs::HazardMode::detect);
  EXPECT_EQ(gs::parse_hazard_mode("1"), gs::HazardMode::detect);
  EXPECT_THROW((void)gs::parse_hazard_mode("loud"), std::invalid_argument);
  EXPECT_STREQ(gs::hazard_mode_name(gs::HazardMode::off), "off");
  EXPECT_STREQ(gs::hazard_mode_name(gs::HazardMode::detect), "detect");
  EXPECT_STREQ(gs::hazard_mode_name(gs::HazardMode::fatal), "fatal");
}

TEST(HazardDetect, RacyKernelFlaggedAsWaw) {
  const auto stats = run_hazard_kernel(gs::HazardMode::detect, racy_waw_kernel);
  // Thread 0's write is first; every later thread conflicts with it.
  expect_only(stats.hazards, 0, 0, kThreads - 1, 0, 0, "racy kernel");
  ASSERT_TRUE(stats.hazard_example.valid);
  EXPECT_STREQ(stats.hazard_example.kind, "waw");
  EXPECT_EQ(stats.hazard_example.block, 0u);
  EXPECT_EQ(stats.hazard_example.byte_offset, 0u);
  EXPECT_NE(stats.hazard_example.tid_a, stats.hazard_example.tid_b);
  EXPECT_NE(stats.hazard_example.describe().find("waw"), std::string::npos);
}

TEST(HazardDetect, MissingBarrierFlaggedAsRaw) {
  const auto stats =
      run_hazard_kernel(gs::HazardMode::detect, missing_barrier_kernel);
  // Every thread but 0 reads the word its neighbour just wrote.
  expect_only(stats.hazards, kThreads - 1, 0, 0, 0, 0, "missing barrier");
  ASSERT_TRUE(stats.hazard_example.valid);
  EXPECT_STREQ(stats.hazard_example.kind, "raw");
}

TEST(HazardDetect, OverwriteOfReadWordFlaggedAsWar) {
  const auto stats = run_hazard_kernel(gs::HazardMode::detect, war_kernel);
  // Threads 1..N-1 overwrite a word their left neighbour already read.
  expect_only(stats.hazards, 0, kThreads - 1, 0, 0, 0, "war kernel");
  ASSERT_TRUE(stats.hazard_example.valid);
  EXPECT_STREQ(stats.hazard_example.kind, "war");
}

TEST(HazardDetect, OutOfBoundsArenaAccessFlagged) {
  const auto stats = run_hazard_kernel(gs::HazardMode::detect, oob_kernel);
  expect_only(stats.hazards, 0, 0, 0, 1, 0, "oob kernel");
  ASSERT_TRUE(stats.hazard_example.valid);
  EXPECT_STREQ(stats.hazard_example.kind, "oob");
}

TEST(HazardDetect, BarrierDivergenceFlagged) {
  const auto stats =
      run_hazard_kernel(gs::HazardMode::detect, divergence_kernel);
  expect_only(stats.hazards, 0, 0, 0, 0, 1, "divergence kernel");
  ASSERT_TRUE(stats.hazard_example.valid);
  EXPECT_STREQ(stats.hazard_example.kind, "divergence");
}

TEST(HazardDetect, CleanKernelReportsNothingButTracks) {
  const auto stats = run_hazard_kernel(gs::HazardMode::detect, clean_kernel);
  expect_only(stats.hazards, 0, 0, 0, 0, 0, "clean kernel");
  EXPECT_FALSE(stats.hazard_example.valid);
  // tracked > 0 distinguishes "inspected and clean" from "not watching".
  EXPECT_GT(stats.hazards.tracked, 0u);
  EXPECT_EQ(stats.hazard_example.describe(), "no hazard");
}

TEST(HazardDetect, OffModeTracksNothing) {
  const auto stats = run_hazard_kernel(gs::HazardMode::off, racy_waw_kernel);
  expect_only(stats.hazards, 0, 0, 0, 0, 0, "off mode");
  EXPECT_EQ(stats.hazards.tracked, 0u);
  EXPECT_FALSE(stats.hazard_example.valid);
}

TEST(HazardDetect, GlobalMemoryTrafficIsNotShared) {
  // Plain load/store outside the arena is ordinary global traffic: not
  // tracked, not OOB — even when every thread hits the same address.
  std::vector<double> global(kThreads, 1.0);
  const auto stats =
      run_hazard_kernel(gs::HazardMode::detect, [&](gs::BlockContext& ctx) {
        ctx.phase([&](gs::ThreadCtx& t) {
          (void)t.load(&global[0]);
          t.store(&global[static_cast<std::size_t>(t.tid())], 2.0);
        });
      });
  expect_only(stats.hazards, 0, 0, 0, 0, 0, "global traffic");
  EXPECT_EQ(stats.hazards.tracked, 0u);
}

TEST(HazardDetect, DeterministicAcrossWorkerCounts) {
  // A grid of racy blocks must report identical counts and the same
  // (lowest-block) example no matter how blocks land on workers.
  const std::size_t grid = 24;
  gs::LaunchStats serial, parallel;
  {
    gs::ScopedSimThreads guard(1);
    serial = run_hazard_kernel(gs::HazardMode::detect, racy_waw_kernel, grid);
  }
  {
    gs::ScopedSimThreads guard(8);
    parallel = run_hazard_kernel(gs::HazardMode::detect, racy_waw_kernel, grid);
  }
  EXPECT_EQ(serial.hazards.waw, grid * (kThreads - 1));
  expect_only(parallel.hazards, serial.hazards.raw, serial.hazards.war,
              serial.hazards.waw, serial.hazards.oob,
              serial.hazards.divergence, "1 vs 8 workers");
  EXPECT_EQ(parallel.hazards.tracked, serial.hazards.tracked);
  ASSERT_TRUE(serial.hazard_example.valid);
  ASSERT_TRUE(parallel.hazard_example.valid);
  EXPECT_EQ(parallel.hazard_example.block, serial.hazard_example.block);
  EXPECT_EQ(serial.hazard_example.block, 0u);
  EXPECT_STREQ(parallel.hazard_example.kind, serial.hazard_example.kind);
}

TEST(HazardFatal, FlaggedLaunchThrowsCleanLaunchDoesNot) {
  EXPECT_THROW((void)run_hazard_kernel(gs::HazardMode::fatal, racy_waw_kernel),
               std::runtime_error);
  try {
    (void)run_hazard_kernel(gs::HazardMode::fatal, missing_barrier_kernel);
    FAIL() << "fatal mode did not throw";
  } catch (const std::runtime_error& e) {
    // The diagnostic names the category and the colliding threads.
    EXPECT_NE(std::string(e.what()).find("raw"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("tid"), std::string::npos);
  }
  EXPECT_NO_THROW((void)run_hazard_kernel(gs::HazardMode::fatal, clean_kernel));
}

TEST(HazardFatal, RegistrySurfacesFindingAsUnsupported) {
  // run_solver converts the fatal throw into supported = false + detail,
  // so sweeps report defective kernels instead of crashing. Exercise via
  // a healthy solver under fatal: it must pass.
  const auto dev = gs::gtx480();
  const auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 8, 256,
                                            td::Layout::contiguous, 5);
  gp::SolverRunOptions opts;
  opts.hazards = gs::HazardMode::fatal;
  const auto outcome = gp::run_solver(gp::SolverKind::hybrid, dev, batch, opts);
  EXPECT_TRUE(outcome.supported) << outcome.detail;
}

TEST(HazardMetrics, CountersAccumulatePerCategory) {
  auto& reg = obs::MetricsRegistry::instance();
  const double waw0 = reg.counter("gpusim.hazard.waw");
  const double raw0 = reg.counter("gpusim.hazard.raw");
  const double tracked0 = reg.counter("gpusim.hazard.tracked");
  (void)run_hazard_kernel(gs::HazardMode::detect, racy_waw_kernel);
  EXPECT_EQ(reg.counter("gpusim.hazard.waw"), waw0 + (kThreads - 1));
  EXPECT_EQ(reg.counter("gpusim.hazard.raw"), raw0);
  EXPECT_GT(reg.counter("gpusim.hazard.tracked"), tracked0);
}

TEST(HazardReadOnly, RegistrySweepCleanAndBitIdenticalUnderDetect) {
  const auto dev = gs::gtx480();
  // Same shape as the engine-determinism sweep: every solver supported,
  // block-homogeneous regime.
  const auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 64, 512,
                                            td::Layout::contiguous, 11);
  auto& reg = obs::MetricsRegistry::instance();

  for (const auto kind : gp::all_solver_kinds()) {
    const std::string what = gp::solver_name(kind);

    gp::SolveOutcome off_outcome;
    td::SystemBatch<double> off_solution;
    {
      gp::SolverRunOptions opts;
      opts.hazards = gs::HazardMode::off;
      off_outcome = gp::run_solver(kind, dev, batch, opts, &off_solution);
    }
    ASSERT_TRUE(off_outcome.supported) << what << ": " << off_outcome.detail;

    const double finding0 = reg.counter("gpusim.hazard.raw") +
                            reg.counter("gpusim.hazard.war") +
                            reg.counter("gpusim.hazard.waw") +
                            reg.counter("gpusim.hazard.oob") +
                            reg.counter("gpusim.hazard.divergence");
    const double tracked0 = reg.counter("gpusim.hazard.tracked");

    gp::SolveOutcome det_outcome;
    td::SystemBatch<double> det_solution;
    {
      gp::SolverRunOptions opts;
      opts.hazards = gs::HazardMode::detect;
      det_outcome = gp::run_solver(kind, dev, batch, opts, &det_solution);
    }
    ASSERT_TRUE(det_outcome.supported) << what << ": " << det_outcome.detail;

    // Clean: not one finding across every launch of the solve.
    const double finding1 = reg.counter("gpusim.hazard.raw") +
                            reg.counter("gpusim.hazard.war") +
                            reg.counter("gpusim.hazard.waw") +
                            reg.counter("gpusim.hazard.oob") +
                            reg.counter("gpusim.hazard.divergence");
    EXPECT_EQ(finding1, finding0) << what << " reported hazards";

    // The detector really watched the kernels that use shared memory.
    switch (kind) {
      case gp::SolverKind::hybrid:
      case gp::SolverKind::hybrid_fused:
      case gp::SolverKind::zhang:
      case gp::SolverKind::cr:
      case gp::SolverKind::davidson:
        EXPECT_GT(reg.counter("gpusim.hazard.tracked"), tracked0)
            << what << " tracked no shared accesses";
        break;
      default:  // pthomas_only / partition keep data in registers+global
        break;
    }

    // Read-only: bit-identical simulated time and solution.
    EXPECT_EQ(det_outcome.time_us, off_outcome.time_us) << what;
    EXPECT_EQ(det_outcome.launches, off_outcome.launches) << what;
    ASSERT_EQ(det_solution.total_rows(), off_solution.total_rows()) << what;
    for (std::size_t i = 0; i < det_solution.total_rows(); ++i) {
      ASSERT_EQ(det_solution.d()[i], off_solution.d()[i])
          << what << " row " << i;
    }
  }
}

TEST(HazardReadOnly, DetectionPreservesStatsOnSampledRuns) {
  // Sampled instrumentation + hazard checking compose: the pthomas raw
  // twin must divert to the instrumented path for coverage, yet report
  // the same numbers (its twins are pinned bit-exact).
  const auto dev = gs::gtx480();
  const auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 64, 512,
                                            td::Layout::interleaved, 7);

  gp::SolveOutcome plain, checked;
  td::SystemBatch<double> plain_sol, checked_sol;
  {
    gp::SolverRunOptions opts;
    opts.instrument = gs::InstrumentMode::sampled;
    plain = gp::run_solver(gp::SolverKind::pthomas_only, dev, batch, opts,
                           &plain_sol);
  }
  {
    gp::SolverRunOptions opts;
    opts.instrument = gs::InstrumentMode::sampled;
    opts.hazards = gs::HazardMode::detect;
    checked = gp::run_solver(gp::SolverKind::pthomas_only, dev, batch, opts,
                             &checked_sol);
  }
  ASSERT_TRUE(plain.supported) << plain.detail;
  ASSERT_TRUE(checked.supported) << checked.detail;
  EXPECT_EQ(checked.time_us, plain.time_us);
  ASSERT_EQ(checked_sol.total_rows(), plain_sol.total_rows());
  for (std::size_t i = 0; i < checked_sol.total_rows(); ++i) {
    ASSERT_EQ(checked_sol.d()[i], plain_sol.d()[i]) << "row " << i;
  }
}
