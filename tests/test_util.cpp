// Unit tests for the util library: aligned buffers, RNG, stats, tables, CLI.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/aligned_buffer.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace util = tridsolve::util;

TEST(AlignedBuffer, ProvidesAlignedStorage) {
  util::AlignedBuffer<double> buf(1000);
  EXPECT_TRUE(util::is_aligned(buf.data(), util::kDefaultAlignment));
  EXPECT_EQ(buf.size(), 1000u);
}

TEST(AlignedBuffer, FillsWithRequestedValue) {
  util::AlignedBuffer<float> buf(17, 3.5f);
  for (float v : buf) EXPECT_EQ(v, 3.5f);
}

TEST(AlignedBuffer, EmptyBufferIsSafe) {
  util::AlignedBuffer<double> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.span().size(), 0u);
}

TEST(AlignedBuffer, SpanViewsSameMemory) {
  util::AlignedBuffer<int> buf(8);
  buf.span()[3] = 42;
  EXPECT_EQ(buf[3], 42);
}

TEST(Xoshiro, DeterministicForSameSeed) {
  util::Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  util::Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b();
  EXPECT_LT(same, 4);
}

TEST(Xoshiro, UniformInRange) {
  util::Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = util::uniform(rng, -2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Xoshiro, UniformIntCoversEndpoints) {
  util::Xoshiro256 rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = util::uniform_int(rng, 0, 7);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 7);
    saw_lo |= v == 0;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro, LongJumpProducesIndependentStream) {
  util::Xoshiro256 a(5);
  util::Xoshiro256 b(5);
  b.long_jump();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b();
  EXPECT_LT(same, 4);
}

TEST(Stats, SummaryBasics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto s = util::summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, 1.5811388, 1e-6);
}

TEST(Stats, MedianOfEvenCount) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(util::summarize(v).median, 2.5);
}

TEST(Stats, EmptySummaryIsZero) {
  const auto s = util::summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, MaxAbsAndRelDiff) {
  const std::vector<double> a{1.0, 2.0, 10.0};
  const std::vector<double> b{1.0, 2.5, 8.0};
  EXPECT_DOUBLE_EQ(util::max_abs_diff(a, b), 2.0);
  EXPECT_DOUBLE_EQ(util::max_rel_diff(a, b), 2.0 / 8.0);
}

TEST(Stats, GeomeanOfPowers) {
  const std::vector<double> v{1.0, 4.0, 16.0};
  EXPECT_NEAR(util::geomean(v), 4.0, 1e-12);
}

TEST(Table, AsciiHasHeaderRuleAndAlignment) {
  util::Table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", util::Table::num(1.5, 2)});
  t.add_row({"b", "22"});
  const std::string s = t.to_ascii();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  EXPECT_EQ(util::csv_escape("plain"), "plain");
  EXPECT_EQ(util::csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(util::csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Table, CsvRoundTripRows) {
  util::Table t;
  t.set_header({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Cli, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--m=128", "--n", "512", "--verbose"};
  util::Cli cli(5, argv, {"m", "n", "verbose"});
  EXPECT_EQ(cli.get_int("m", 0), 128);
  EXPECT_EQ(cli.get_int("n", 0), 512);
  EXPECT_TRUE(cli.get_bool("verbose", false));
}

TEST(Cli, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  util::Cli cli(1, argv, {"m"});
  EXPECT_EQ(cli.get_int("m", 7), 7);
  EXPECT_EQ(cli.get_string("m", "dft"), "dft");
  EXPECT_DOUBLE_EQ(cli.get_double("m", 2.5), 2.5);
}

TEST(Cli, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(util::Cli(2, argv, {"m"}), std::invalid_argument);
}

TEST(Cli, CollectsPositionals) {
  const char* argv[] = {"prog", "file1", "--m=1", "file2"};
  util::Cli cli(4, argv, {"m"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "file1");
  EXPECT_EQ(cli.positional()[1], "file2");
}
