// Queue/batcher edge cases and the service's determinism contract
// (docs/SERVICE.md): in-queue expiry returns `deadline` with pristine
// inputs, incompatible shapes never coalesce, solo and coalesced batches
// are bitwise-identical to direct run_solver calls for every solver
// kind, and shutdown drains the queue without losing an ack.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "gpu_solvers/registry.hpp"
#include "service/solve_service.hpp"
#include "workloads/traffic.hpp"

using namespace tridsolve;

namespace {

/// A paused service: requests staged before start() are admitted in one
/// deterministic drain.
service::ServiceConfig paused_config() {
  service::ServiceConfig cfg;
  cfg.auto_start = false;
  cfg.batch_window_us = 0.0;  // dispatch as soon as the batcher looks
  return cfg;
}

tridiag::TridiagSystem<double> make_system(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  return workloads::make_request_system(workloads::Kind::random_dominant, n,
                                        rng);
}

service::SolveRequest request_for(const tridiag::TridiagSystem<double>& sys) {
  service::SolveRequest req;
  req.system = sys.clone();
  return req;
}

}  // namespace

TEST(SolveService, InQueueExpiryReturnsDeadlineWithPristineInputs) {
  service::SolveService svc(paused_config());
  const auto sys = make_system(64, 7);
  service::SolveRequest req = request_for(sys);
  req.deadline_us = 1000.0;  // 1 ms, long gone by the time we start
  auto fut = svc.submit(std::move(req));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  svc.start();
  const auto r = fut.get();
  EXPECT_EQ(r.code, tridiag::SolveCode::deadline);
  EXPECT_EQ(r.batch_id, 0u) << "an expired request must never be dispatched";
  ASSERT_EQ(r.x.size(), sys.size());
  for (std::size_t i = 0; i < sys.size(); ++i) {
    EXPECT_EQ(r.x[i], sys.d()[i]) << "row " << i << " is not the pristine rhs";
  }
  EXPECT_EQ(svc.requests_expired(), 1u);
  EXPECT_EQ(svc.batches_launched(), 0u);
  svc.shutdown();
}

// A deadline inside a long batch window must shorten the window and get
// the request *dispatched*, not expired: the window closes a dispatch
// margin before the deadline precisely so the wake-up lands on the admit
// path instead of expire_overdue (docs/SERVICE.md § tuning).
TEST(SolveService, DeadlineInsideWindowDispatchesInsteadOfExpiring) {
  service::ServiceConfig cfg;
  cfg.batch_window_us = 10'000'000.0;  // 10 s: deadline must cut it short
  const auto sys = make_system(64, 13);
  service::SolveService svc(cfg);
  service::SolveRequest req = request_for(sys);
  req.deadline_us = 25'000.0;  // well past the margin, well short of window
  auto fut = svc.submit(std::move(req));
  const auto r = fut.get();
  EXPECT_NE(r.code, tridiag::SolveCode::deadline)
      << "a lone request must ride the deadline-shortened window, not "
         "expire at its close";
  EXPECT_NE(r.batch_id, 0u);
  ASSERT_EQ(r.x.size(), sys.size());
  EXPECT_EQ(svc.requests_expired(), 0u);
  EXPECT_EQ(svc.batches_launched(), 1u);
  svc.shutdown();
}

// A lone submit against an idle batcher must wake it: the notify in
// submit() synchronizes through wake_mu_, so the future resolves without
// any follow-up traffic (regression: lost-wakeup race).
TEST(SolveService, LoneSubmitWakesIdleBatcher) {
  service::ServiceConfig cfg;
  cfg.batch_window_us = 0.0;
  service::SolveService svc(cfg);
  // Give the batcher time to reach its idle (untimed) wait.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  auto fut = svc.submit(request_for(make_system(64, 17)));
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)), std::future_status::ready)
      << "batcher never woke for a lone submit";
  EXPECT_EQ(fut.get().code, tridiag::SolveCode::ok);
  svc.shutdown();
}

TEST(SolveService, IncompatibleShapesNeverCoalesce) {
  service::SolveService svc(paused_config());
  std::vector<std::future<service::SolveResult>> futures;
  for (int rep = 0; rep < 3; ++rep) {
    futures.push_back(
        svc.submit(request_for(make_system(64, 100 + rep))));
    futures.push_back(
        svc.submit(request_for(make_system(128, 200 + rep))));
  }
  svc.start();
  std::vector<service::SolveResult> results;
  for (auto& f : futures) results.push_back(f.get());
  svc.shutdown();

  std::uint64_t batch64 = 0, batch128 = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    EXPECT_EQ(r.code, tridiag::SolveCode::ok);
    std::uint64_t& expect = (i % 2 == 0) ? batch64 : batch128;
    if (expect == 0) {
      expect = r.batch_id;
    } else {
      EXPECT_EQ(r.batch_id, expect) << "same-N requests must share a batch";
    }
  }
  EXPECT_NE(batch64, batch128) << "different N must never share a launch";
  EXPECT_EQ(svc.batches_launched(), 2u);
}

TEST(SolveService, SoloBatchBitwiseIdenticalToDirectRunSolver) {
  const std::size_t n = 64;
  const auto dev = gpusim::gtx480();
  for (const gpu::SolverKind kind : gpu::all_solver_kinds()) {
    const auto sys = make_system(n, 11);
    tridiag::SystemBatch<double> direct(1, n,
                                        service::coalesced_layout(1, n));
    for (std::size_t i = 0; i < n; ++i) {
      direct.a()[i] = sys.a()[i];
      direct.b()[i] = sys.b()[i];
      direct.c()[i] = sys.c()[i];
      direct.d()[i] = sys.d()[i];
    }
    gpu::SolverRunOptions opts;
    opts.guard = true;
    tridiag::SystemBatch<double> expected;
    const auto outcome = gpu::run_solver(kind, dev, direct, opts, &expected);
    if (expected.num_systems() != 1) {
      continue;  // configuration rejected for this N — nothing to compare
    }

    service::ServiceConfig cfg = paused_config();
    cfg.solver = kind;
    service::SolveService svc(cfg);
    auto fut = svc.submit(request_for(sys));
    svc.start();
    const auto r = fut.get();
    svc.shutdown();

    EXPECT_EQ(r.batch_size, 1u);
    ASSERT_EQ(r.x.size(), n) << gpu::solver_name(kind);
    const auto x = expected.system(0).d;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(r.x[i], x[i])
          << gpu::solver_name(kind) << " row " << i << " not bit-identical";
    }
    if (outcome.status.size() == 1) {
      EXPECT_EQ(r.code, outcome.status[0].code) << gpu::solver_name(kind);
    }
  }
}

TEST(SolveService, CoalescedBatchBitwiseIdenticalToDirectRunSolver) {
  const std::size_t n = 64;
  const std::size_t m = 5;
  const auto dev = gpusim::gtx480();
  for (const gpu::SolverKind kind : gpu::all_solver_kinds()) {
    std::vector<tridiag::TridiagSystem<double>> systems;
    for (std::size_t j = 0; j < m; ++j) {
      systems.push_back(make_system(n, 300 + j));
    }
    tridiag::SystemBatch<double> direct(m, n,
                                        service::coalesced_layout(m, n));
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t at = direct.index(j, i);
        direct.a()[at] = systems[j].a()[i];
        direct.b()[at] = systems[j].b()[i];
        direct.c()[at] = systems[j].c()[i];
        direct.d()[at] = systems[j].d()[i];
      }
    }
    gpu::SolverRunOptions opts;
    opts.guard = true;
    tridiag::SystemBatch<double> expected;
    gpu::run_solver(kind, dev, direct, opts, &expected);
    if (expected.num_systems() != m) continue;

    // Staged while paused, so one drain admits all five in submit order
    // (equal priority) — the exact batch `direct` models.
    service::ServiceConfig cfg = paused_config();
    cfg.solver = kind;
    service::SolveService svc(cfg);
    std::vector<std::future<service::SolveResult>> futures;
    for (const auto& sys : systems) futures.push_back(svc.submit(request_for(sys)));
    svc.start();
    for (std::size_t j = 0; j < m; ++j) {
      const auto r = futures[j].get();
      EXPECT_EQ(r.batch_size, m) << gpu::solver_name(kind);
      const auto x = expected.system(j).d;
      ASSERT_EQ(r.x.size(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(r.x[i], x[i]) << gpu::solver_name(kind) << " system " << j
                                << " row " << i << " not bit-identical";
      }
    }
    svc.shutdown();
    EXPECT_EQ(svc.batches_launched(), 1u) << gpu::solver_name(kind);
  }
}

TEST(SolveService, PriorityOrdersAdmissionWithinABatch) {
  // Bitwise contract is about order: a high-priority late submit must
  // occupy the first slot of the coalesced batch.
  const std::size_t n = 64;
  service::ServiceConfig cfg = paused_config();
  service::SolveService svc(cfg);
  auto low = request_for(make_system(n, 1));
  auto high = request_for(make_system(n, 2));
  high.priority = 5;
  auto f_low = svc.submit(std::move(low));
  auto f_high = svc.submit(std::move(high));
  svc.start();
  const auto r_low = f_low.get();
  const auto r_high = f_high.get();
  svc.shutdown();
  EXPECT_EQ(r_low.batch_id, r_high.batch_id);
  EXPECT_EQ(r_low.batch_size, 2u);

  // Re-create the expected batch in (high, low) admission order.
  const auto dev = gpusim::gtx480();
  auto sys_high = make_system(n, 2);
  auto sys_low = make_system(n, 1);
  tridiag::SystemBatch<double> direct(2, n, service::coalesced_layout(2, n));
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t hi = direct.index(0, i);
    direct.a()[hi] = sys_high.a()[i];
    direct.b()[hi] = sys_high.b()[i];
    direct.c()[hi] = sys_high.c()[i];
    direct.d()[hi] = sys_high.d()[i];
    const std::size_t lo = direct.index(1, i);
    direct.a()[lo] = sys_low.a()[i];
    direct.b()[lo] = sys_low.b()[i];
    direct.c()[lo] = sys_low.c()[i];
    direct.d()[lo] = sys_low.d()[i];
  }
  gpu::SolverRunOptions opts;
  opts.guard = true;
  tridiag::SystemBatch<double> expected;
  gpu::run_solver(gpu::SolverKind::hybrid, dev, direct, opts, &expected);
  ASSERT_EQ(expected.num_systems(), 2u);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(r_high.x[i], expected.system(0).d[i]);
    EXPECT_EQ(r_low.x[i], expected.system(1).d[i]);
  }
}

TEST(SolveService, ShutdownDrainsQueueWithoutLosingAcks) {
  service::SolveService svc(paused_config());
  std::vector<std::future<service::SolveResult>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(svc.submit(request_for(make_system(64, 400 + i))));
  }
  // Never started: shutdown itself must drain and fulfill everything.
  svc.shutdown();
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready)
        << "shutdown lost an ack";
    const auto r = f.get();
    EXPECT_EQ(r.code, tridiag::SolveCode::ok);
  }
  EXPECT_EQ(svc.requests_completed(), 20u);

  // After shutdown, submissions are rejected with a ready future.
  auto rejected = svc.submit(request_for(make_system(64, 999)));
  ASSERT_EQ(rejected.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(rejected.get().code, tridiag::SolveCode::bad_argument);
}

TEST(SolveService, EmptySystemRejectedWithBadSize) {
  service::SolveService svc(paused_config());
  service::SolveRequest req;  // default: empty system
  auto fut = svc.submit(std::move(req));
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(fut.get().code, tridiag::SolveCode::bad_size);
  svc.shutdown();
}

TEST(SolveService, MaxBatchCapsAdmission) {
  service::ServiceConfig cfg = paused_config();
  cfg.max_batch = 4;
  service::SolveService svc(cfg);
  std::vector<std::future<service::SolveResult>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(svc.submit(request_for(make_system(64, 500 + i))));
  }
  svc.start();
  for (auto& f : futures) {
    const auto r = f.get();
    EXPECT_EQ(r.code, tridiag::SolveCode::ok);
    EXPECT_LE(r.batch_size, 4u);
  }
  svc.shutdown();
  EXPECT_EQ(svc.batches_launched(), 3u) << "10 requests at cap 4 = 4+4+2";
}

TEST(TrafficGenerator, ArrivalsAreDeterministicAndMonotone) {
  workloads::TrafficConfig cfg;
  cfg.rate_rps = 50000;
  cfg.requests = 200;
  cfg.seed = 9;
  const auto a = workloads::arrival_times_us(cfg);
  const auto b = workloads::arrival_times_us(cfg);
  ASSERT_EQ(a.size(), 200u);
  EXPECT_EQ(a, b) << "same seed must reproduce the same arrival stream";
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_GE(a[i], a[i - 1]) << "arrival times must be non-decreasing";
  }
  // Mean inter-arrival ≈ 20 us at 50 krps; allow generous slack.
  const double mean_gap = a.back() / static_cast<double>(a.size() - 1);
  EXPECT_GT(mean_gap, 10.0);
  EXPECT_LT(mean_gap, 40.0);
}

TEST(TrafficGenerator, BurstySweepCompressesOnWindows) {
  workloads::TrafficConfig steady;
  steady.rate_rps = 10000;
  steady.requests = 400;
  steady.seed = 5;
  workloads::TrafficConfig bursty = steady;
  bursty.burst = 4.0;
  const auto s = workloads::arrival_times_us(steady);
  const auto b = workloads::arrival_times_us(bursty);
  // Same mean load: total makespans are comparable...
  EXPECT_NEAR(b.back(), s.back(), 0.5 * s.back());
  // ...but every bursty arrival lands inside the first 1/burst of its
  // cycle (the "on" window).
  for (const double t : b) {
    const double phase =
        t - std::floor(t / bursty.cycle_us) * bursty.cycle_us;
    EXPECT_LE(phase, bursty.cycle_us / bursty.burst + 1e-9);
  }
}
