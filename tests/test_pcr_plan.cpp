// PcrPlan (factor-once hybrid pipeline) tests: bitwise agreement with the
// direct pcr_reduce + per-class Thomas pipeline, repeated-rhs usage, and
// edge cases.

#include <gtest/gtest.h>

#include <vector>

#include "tridiag/pcr.hpp"
#include "tridiag/pcr_plan.hpp"
#include "tridiag/residual.hpp"
#include "tridiag/thomas.hpp"
#include "util/random.hpp"
#include "workloads/generators.hpp"

namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;
using tridsolve::util::Xoshiro256;

namespace {

td::TridiagSystem<double> make_system(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  td::TridiagSystem<double> s(n);
  wl::fill_matrix(wl::Kind::random_dominant, s.ref(), rng);
  wl::fill_rhs_random(s.ref(), rng);
  return s;
}

/// Reference: destructive reduce + per-class Thomas.
std::vector<double> direct_pipeline(const td::TridiagSystem<double>& s, unsigned k) {
  auto copy = s.clone();
  td::pcr_reduce(copy.ref(), k);
  const std::size_t n = s.size();
  const std::size_t stride = std::size_t{1} << k;
  std::vector<double> x(n);
  auto sys = copy.ref();
  for (std::size_t r = 0; r < stride && r < n; ++r) {
    const std::size_t count = (n - r + stride - 1) / stride;
    td::SystemRef<double> cls{
        td::StridedView<double>(sys.a.ptr(r), count, static_cast<std::ptrdiff_t>(stride)),
        td::StridedView<double>(sys.b.ptr(r), count, static_cast<std::ptrdiff_t>(stride)),
        td::StridedView<double>(sys.c.ptr(r), count, static_cast<std::ptrdiff_t>(stride)),
        td::StridedView<double>(sys.d.ptr(r), count, static_cast<std::ptrdiff_t>(stride))};
    EXPECT_TRUE(td::thomas_solve(
                    cls, td::StridedView<double>(x.data() + r, count,
                                                 static_cast<std::ptrdiff_t>(stride)))
                    .ok());
  }
  return x;
}

}  // namespace

class PcrPlanParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>> {};

TEST_P(PcrPlanParam, BitwiseMatchesDirectPipeline) {
  const auto [n, k] = GetParam();
  auto s = make_system(n, 11 * n + k);
  const td::PcrPlan<double> plan(td::as_const(s.ref()), k);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.steps(), k);

  std::vector<double> x(n);
  ASSERT_TRUE(plan.solve(td::as_const(s.ref()).d,
                         td::StridedView<double>(x.data(), n, 1))
                  .ok());
  const auto ref = direct_pipeline(s, k);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(x[i], ref[i]) << i;
}

using PlanShape = std::tuple<std::size_t, unsigned>;
INSTANTIATE_TEST_SUITE_P(Shapes, PcrPlanParam,
                         ::testing::Values(PlanShape{16, 1}, PlanShape{17, 2},
                                           PlanShape{100, 3}, PlanShape{256, 4},
                                           PlanShape{1000, 5}, PlanShape{64, 6},
                                           PlanShape{500, 0}));

TEST(PcrPlan, RepeatedRhsAllAccurate) {
  auto s = make_system(300, 7);
  const td::PcrPlan<double> plan(td::as_const(s.ref()), 4);
  ASSERT_TRUE(plan.ok());
  Xoshiro256 rng(8);
  std::vector<double> d(300), x(300);
  for (int rhs = 0; rhs < 20; ++rhs) {
    tridsolve::util::fill_uniform(rng, std::span<double>(d), -2.0, 2.0);
    ASSERT_TRUE(plan.solve(td::StridedView<const double>(d.data(), 300, 1),
                           td::StridedView<double>(x.data(), 300, 1))
                    .ok());
    for (std::size_t i = 0; i < 300; ++i) s.d()[i] = d[i];
    EXPECT_LT(td::residual_inf(td::as_const(s.ref()),
                               td::StridedView<const double>(x.data(), 300, 1)),
              1e-11)
        << "rhs " << rhs;
  }
}

TEST(PcrPlan, XMayAliasD) {
  auto s = make_system(128, 9);
  const td::PcrPlan<double> plan(td::as_const(s.ref()), 3);
  std::vector<double> expected(128);
  ASSERT_TRUE(plan.solve(td::as_const(s.ref()).d,
                         td::StridedView<double>(expected.data(), 128, 1))
                  .ok());
  auto aliased = s.ref().d;
  ASSERT_TRUE(plan.solve(td::as_const(s.ref()).d, aliased).ok());
  for (std::size_t i = 0; i < 128; ++i) EXPECT_EQ(aliased[i], expected[i]);
}

TEST(PcrPlan, KZeroIsJustThomasPlan) {
  auto s = make_system(64, 10);
  const td::PcrPlan<double> plan(td::as_const(s.ref()), 0);
  const td::ThomasPlan<double> tplan(td::as_const(s.ref()));
  std::vector<double> xp(64), xt(64);
  ASSERT_TRUE(plan.solve(td::as_const(s.ref()).d,
                         td::StridedView<double>(xp.data(), 64, 1))
                  .ok());
  ASSERT_TRUE(tplan.solve(td::as_const(s.ref()).d,
                          td::StridedView<double>(xt.data(), 64, 1))
                  .ok());
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(xp[i], xt[i]);
}

TEST(PcrPlan, BadSizesRejected) {
  auto s = make_system(32, 11);
  const td::PcrPlan<double> plan(td::as_const(s.ref()), 2);
  std::vector<double> x(31);
  EXPECT_EQ(plan.solve(td::as_const(s.ref()).d,
                       td::StridedView<double>(x.data(), 31, 1))
                .code,
            td::SolveCode::bad_size);
}

TEST(PcrPlan, ZeroPivotSurfacesFromClassFactorization) {
  td::TridiagSystem<double> s(8);  // all-zero matrix -> singular classes
  const td::PcrPlan<double> plan(td::as_const(s.ref()), 1);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code, td::SolveCode::zero_pivot);
}
