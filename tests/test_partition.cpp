// Block-partition (Wang/SPIKE-style) solver tests.

#include <gtest/gtest.h>

#include <vector>

#include "tridiag/lu_pivot.hpp"
#include "tridiag/partition.hpp"
#include "tridiag/residual.hpp"
#include "util/stats.hpp"
#include "workloads/generators.hpp"

namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;
using tridsolve::util::Xoshiro256;

namespace {

td::TridiagSystem<double> make_system(wl::Kind kind, std::size_t n,
                                      std::uint64_t seed) {
  Xoshiro256 rng(seed);
  td::TridiagSystem<double> s(n);
  wl::fill_matrix(kind, s.ref(), rng);
  wl::fill_rhs_random(s.ref(), rng);
  return s;
}

std::vector<double> referee(const td::TridiagSystem<double>& s) {
  std::vector<double> x(s.size());
  auto copy = s.clone();
  EXPECT_TRUE(
      td::lu_gtsv(copy.ref(), td::StridedView<double>(x.data(), x.size(), 1)).ok());
  return x;
}

}  // namespace

class PartitionParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(PartitionParam, MatchesReferee) {
  const auto [n, p] = GetParam();
  auto s = make_system(wl::Kind::random_dominant, n, 31 * n + p);
  const auto ref = referee(s);
  std::vector<double> x(n);
  ASSERT_TRUE(
      td::partition_solve(s.ref(), td::StridedView<double>(x.data(), n, 1), p)
          .ok());
  EXPECT_LT(tridsolve::util::max_abs_diff(std::span<const double>(x),
                                          std::span<const double>(ref)),
            1e-9)
      << "n=" << n << " p=" << p;
}

using NP = std::tuple<std::size_t, std::size_t>;
INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionParam,
    ::testing::Values(NP{4, 2}, NP{16, 4}, NP{17, 4}, NP{100, 8}, NP{100, 7},
                      NP{256, 16}, NP{1000, 32}, NP{1000, 999}, NP{5, 100},
                      NP{1024, 2}));

TEST(Partition, AllWorkloadKinds) {
  for (auto kind : {wl::Kind::toeplitz, wl::Kind::poisson1d, wl::Kind::adi_sweep,
                    wl::Kind::spline}) {
    auto s = make_system(kind, 333, 5);
    std::vector<double> x(333);
    ASSERT_TRUE(
        td::partition_solve(s.ref(), td::StridedView<double>(x.data(), 333, 1), 16)
            .ok())
        << wl::kind_name(kind);
    EXPECT_LT(td::relative_residual(td::as_const(s.ref()),
                                    td::StridedView<const double>(x.data(), 333, 1)),
              1e-12)
        << wl::kind_name(kind);
  }
}

TEST(Partition, PacketSizeLargerThanSystemDegeneratesGracefully) {
  auto s = make_system(wl::Kind::random_dominant, 10, 7);
  const auto ref = referee(s);
  std::vector<double> x(10);
  ASSERT_TRUE(
      td::partition_solve(s.ref(), td::StridedView<double>(x.data(), 10, 1), 64)
          .ok());
  EXPECT_LT(tridsolve::util::max_abs_diff(std::span<const double>(x),
                                          std::span<const double>(ref)),
            1e-11);
}

TEST(Partition, RejectsTinyPackets) {
  auto s = make_system(wl::Kind::random_dominant, 16, 9);
  std::vector<double> x(16);
  EXPECT_EQ(
      td::partition_solve(s.ref(), td::StridedView<double>(x.data(), 16, 1), 1)
          .code,
      td::SolveCode::bad_size);
}

TEST(Partition, SingularMatrixReported) {
  td::TridiagSystem<double> s(8);  // zero matrix
  std::vector<double> x(8);
  EXPECT_EQ(
      td::partition_solve(s.ref(), td::StridedView<double>(x.data(), 8, 1), 4)
          .code,
      td::SolveCode::zero_pivot);
}

TEST(Partition, NonDestructive) {
  auto s = make_system(wl::Kind::random_dominant, 64, 11);
  const auto before = s.clone();
  std::vector<double> x(64);
  ASSERT_TRUE(
      td::partition_solve(s.ref(), td::StridedView<double>(x.data(), 64, 1), 8)
          .ok());
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(s.b()[i], before.b()[i]);
    EXPECT_EQ(s.d()[i], before.d()[i]);
  }
}

TEST(Partition, FloatPrecision) {
  Xoshiro256 rng(13);
  td::TridiagSystem<float> s(200);
  wl::fill_matrix(wl::Kind::toeplitz, s.ref(), rng);
  wl::fill_rhs_random(s.ref(), rng);
  std::vector<float> x(200);
  ASSERT_TRUE(
      td::partition_solve(s.ref(), td::StridedView<float>(x.data(), 200, 1), 16)
          .ok());
  EXPECT_LT(td::relative_residual(td::as_const(s.ref()),
                                  td::StridedView<const float>(x.data(), 200, 1)),
            1e-5);
}
