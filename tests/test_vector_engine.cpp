// Vectorized functional fast path: registry-wide bit-identity of the
// lane-vectorized twins against the scalar twins, the fallback rules
// (guards / faults / hazards force scalar), pooled-scratch steady state
// (zero allocations once warm), and the LanePool itself.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "gpu_solvers/registry.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/exec_engine.hpp"
#include "gpusim/fault_injector.hpp"
#include "gpusim/vector_engine.hpp"
#include "obs/metrics.hpp"
#include "workloads/generators.hpp"

namespace gs = tridsolve::gpusim;
namespace gpu = tridsolve::gpu;
namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;

namespace {

double counter(const char* name) {
  return tridsolve::obs::MetricsRegistry::instance().counter(name);
}

/// Solve `batch` functionally with the vector path on/off; returns the
/// solved copy (or nullopt-equivalent empty batch when unsupported).
template <typename T>
bool solve_functional(gpu::SolverKind kind, const td::SystemBatch<T>& batch,
                      bool vector, td::SystemBatch<T>& solution) {
  const auto dev = gs::gtx480();
  const gs::ScopedVectorMode vec(vector);
  gpu::SolverRunOptions opts;
  opts.instrument = gs::InstrumentMode::functional_only;
  (void)gpu::run_solver<T>(kind, dev, batch, opts, &solution);
  // functional_only runs report supported == false (no timing) but still
  // hand out their solution; a real configuration rejection leaves
  // `solution` untouched.
  return solution.total_rows() == batch.total_rows();
}

template <typename T>
void expect_bitwise(const td::SystemBatch<T>& a, const td::SystemBatch<T>& b,
                    const char* what) {
  ASSERT_EQ(a.total_rows(), b.total_rows()) << what;
  for (std::size_t i = 0; i < a.total_rows(); ++i) {
    T x = a.d()[i], y = b.d()[i];
    std::uint64_t xb = 0, yb = 0;
    std::memcpy(&xb, &x, sizeof(T));
    std::memcpy(&yb, &y, sizeof(T));
    EXPECT_EQ(xb, yb) << what << " row " << i;
  }
}

}  // namespace

// Every solver kind, both layouts, shapes chosen to stress the lane
// blocking: odd N, N not divisible by any SIMD width, and M = 1 (a
// single lane — no cross-system vectorization possible).
TEST(VectorEngine, RegistryWideBitIdentityVectorOnVsOff) {
  struct Shape {
    std::size_t m, n;
  };
  const Shape shapes[] = {{96, 257}, {64, 130}, {1, 301}};
  for (const auto kind : gpu::all_solver_kinds()) {
    for (const auto layout :
         {td::Layout::interleaved, td::Layout::contiguous}) {
      for (const auto& s : shapes) {
        const auto batch = wl::make_batch<double>(
            wl::Kind::random_dominant, s.m, s.n, layout, /*seed=*/7);
        td::SystemBatch<double> with_vec, without_vec;
        const bool ok_on =
            solve_functional(kind, batch, /*vector=*/true, with_vec);
        const bool ok_off =
            solve_functional(kind, batch, /*vector=*/false, without_vec);
        ASSERT_EQ(ok_on, ok_off)
            << gpu::solver_name(kind) << " applicability changed with --vector";
        if (!ok_on) continue;  // kind rejects this shape (e.g. in-shared cap)
        std::string what = std::string(gpu::solver_name(kind)) + " " +
                           td::layout_name(layout) + " M=" +
                           std::to_string(s.m) + " N=" + std::to_string(s.n);
        expect_bitwise(with_vec, without_vec, what.c_str());
      }
    }
  }
}

TEST(VectorEngine, FloatPathBitIdentical) {
  const auto batch = wl::make_batch<float>(wl::Kind::random_dominant, 48, 203,
                                           td::Layout::interleaved, /*seed=*/9);
  td::SystemBatch<float> with_vec, without_vec;
  ASSERT_TRUE(solve_functional(gpu::SolverKind::hybrid, batch, true, with_vec));
  ASSERT_TRUE(
      solve_functional(gpu::SolverKind::hybrid, batch, false, without_vec));
  ASSERT_EQ(with_vec.total_rows(), without_vec.total_rows());
  for (std::size_t i = 0; i < with_vec.total_rows(); ++i) {
    std::uint32_t xb = 0, yb = 0;
    std::memcpy(&xb, &with_vec.d()[i], sizeof(float));
    std::memcpy(&yb, &without_vec.d()[i], sizeof(float));
    EXPECT_EQ(xb, yb) << i;
  }
}

// Guards, hazard detection, and fault injection must each force the
// scalar twin: the vectorized paths skip per-access bookkeeping, so any
// observing mode would silently lose its observations.
TEST(VectorEngine, GuardsFaultsAndHazardsForceScalarFallback) {
  const auto dev = gs::gtx480();
  const auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 64, 128,
                                            td::Layout::interleaved, 11);
  td::SystemBatch<double> solution;
  gpu::SolverRunOptions functional;
  functional.instrument = gs::InstrumentMode::functional_only;

  // Baseline: the plain functional run takes the vector path.
  double plain_delta = 0.0;
  {
    const double before = counter("gpusim.vector.blocks");
    (void)gpu::run_solver<double>(gpu::SolverKind::hybrid, dev, batch,
                                  functional, &solution);
    plain_delta = counter("gpusim.vector.blocks") - before;
    EXPECT_GT(plain_delta, 0.0) << "plain functional run should vectorize";
  }

  // Guarded run: pivot guards need the per-row divisor observations, so
  // every *guarded* sweep (the eliminations) must take the scalar twin.
  // The backward substitution performs no divisions and records nothing a
  // guard could want, so it legitimately stays vectorized — the delta
  // must drop strictly below the unguarded run's.
  {
    auto opts = functional;
    opts.guard = true;
    const double before = counter("gpusim.vector.blocks");
    (void)gpu::run_solver<double>(gpu::SolverKind::hybrid, dev, batch, opts,
                                  &solution);
    EXPECT_LT(counter("gpusim.vector.blocks") - before, plain_delta)
        << "guarded run must drop every guarded sweep to the scalar twin";
  }

  // Hazard detection: needs per-access shared-memory tracking.
  {
    auto opts = functional;
    opts.hazards = gs::HazardMode::detect;
    const double before = counter("gpusim.vector.blocks");
    (void)gpu::run_solver<double>(gpu::SolverKind::hybrid, dev, batch, opts,
                                  &solution);
    EXPECT_EQ(counter("gpusim.vector.blocks"), before)
        << "hazard-checked run must stay scalar";
  }

  // Active fault plan: victim sites are per-access, so the vectorized
  // sweep would never see its faults.
  {
    gs::FaultPlan plan;
    plan.seed = 1;
    plan.rate = 1e-9;  // active, but virtually never fires
    const gs::ScopedFaultPlan fault(plan);
    const double before = counter("gpusim.vector.blocks");
    (void)gpu::run_solver<double>(gpu::SolverKind::hybrid, dev, batch,
                                  functional, &solution);
    EXPECT_EQ(counter("gpusim.vector.blocks"), before)
        << "fault-injected run must stay scalar";
  }
}

// Steady-state functional solves must perform zero pool growth: after a
// warm-up solve, repeated solves of the same shape serve every lane
// carry from the warm arena (reuses climb, acquires stay flat).
TEST(VectorEngine, PooledScratchZeroAllocSteadyState) {
  const auto dev = gs::gtx480();
  const auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 128, 256,
                                            td::Layout::interleaved, 13);
  td::SystemBatch<double> solution;
  gpu::SolverRunOptions functional;
  functional.instrument = gs::InstrumentMode::functional_only;

  // Two warm-up solves: the first sizes the arenas (spill growth), the
  // second consolidates them (one growth per pool) — from then on every
  // take is served warm.
  for (int i = 0; i < 2; ++i) {
    (void)gpu::run_solver<double>(gpu::SolverKind::hybrid, dev, batch,
                                  functional, &solution);
  }
  const double acquires = counter("gpusim.scratch.acquires");
  const double reuses = counter("gpusim.scratch.reuses");
  for (int i = 0; i < 3; ++i) {
    (void)gpu::run_solver<double>(gpu::SolverKind::hybrid, dev, batch,
                                  functional, &solution);
  }
  EXPECT_EQ(counter("gpusim.scratch.acquires"), acquires)
      << "steady-state solves must not grow the lane pools";
  EXPECT_GT(counter("gpusim.scratch.reuses"), reuses)
      << "steady-state solves must serve from the warm arenas";
}

TEST(VectorEngine, LanePoolConsolidatesAndZeroInitializes) {
  gs::LanePool pool;
  pool.begin_block();
  auto first = pool.take<double>(100);
  ASSERT_EQ(first.size(), 100u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(first.data()) % 64, 0u);
  for (double v : first) EXPECT_EQ(v, 0.0);
  first[0] = 42.0;
  auto second = pool.take<double>(50);  // spill chunk; first stays valid
  EXPECT_EQ(first[0], 42.0);
  for (double v : second) EXPECT_EQ(v, 0.0);

  std::size_t acquires = 0, reuses = 0;
  pool.drain(acquires, reuses);
  EXPECT_GT(acquires, 0u);

  // Next block consolidates: the same demand is now served warm.
  pool.begin_block();
  (void)pool.take<double>(100);
  (void)pool.take<double>(50);
  acquires = reuses = 0;
  pool.drain(acquires, reuses);
  EXPECT_EQ(acquires, 1u) << "one consolidation growth, then warm";
  EXPECT_EQ(reuses, 2u) << "both takes served from the consolidated arena";
  pool.begin_block();
  (void)pool.take<double>(100);
  (void)pool.take<double>(50);
  acquires = reuses = 0;
  pool.drain(acquires, reuses);
  EXPECT_EQ(acquires, 0u) << "steady state: zero allocations";
  EXPECT_EQ(reuses, 2u);
}

TEST(VectorEngine, LaneTilePowerOfTwoAndBudgetBound) {
  const std::size_t w = gs::lane_tile(512, sizeof(double));
  EXPECT_EQ(w & (w - 1), 0u);
  EXPECT_GE(w, 64u);
  EXPECT_LE(2 * 512 * sizeof(double) * w, std::size_t{128} << 20);
  // Tiny rows hit the upper clamp; huge rows the lower one.
  EXPECT_EQ(gs::lane_tile(1, 1), std::size_t{1} << 20);
  EXPECT_EQ(gs::lane_tile(std::size_t{1} << 22, sizeof(double)), 64u);
}
