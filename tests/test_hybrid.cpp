// Hybrid solver tests: end-to-end correctness across (M, N) shapes,
// precisions, layouts, window variants, fusion, and the transition logic
// (Table II cost model + Table III heuristic).

#include <gtest/gtest.h>

#include <vector>

#include "gpu_solvers/hybrid_solver.hpp"
#include "gpu_solvers/transition.hpp"
#include "gpusim/device_spec.hpp"
#include "tridiag/lu_pivot.hpp"
#include "workloads/generators.hpp"

namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;
namespace gp = tridsolve::gpu;
namespace gs = tridsolve::gpusim;

namespace {

template <typename T>
void check_solved(const td::SystemBatch<T>& solved, const td::SystemBatch<T>& orig,
                  double tol) {
  auto copy = orig.clone();
  std::vector<T> x(orig.system_size());
  for (std::size_t m = 0; m < orig.num_systems(); ++m) {
    auto sys = copy.system(m);
    ASSERT_TRUE(
        td::lu_gtsv<T>(sys, td::StridedView<T>(x.data(), x.size(), 1)).ok());
    for (std::size_t i = 0; i < orig.system_size(); ++i) {
      ASSERT_NEAR(solved.d()[solved.index(m, i)], x[i], tol)
          << "m=" << m << " i=" << i;
    }
  }
}

}  // namespace

// ---- Transition logic -----------------------------------------------------

TEST(Transition, Table3Heuristic) {
  // Exactly the paper's Table III (system size large enough not to clamp).
  EXPECT_EQ(gp::heuristic_k(1, 1 << 20), 8u);
  EXPECT_EQ(gp::heuristic_k(15, 1 << 20), 8u);
  EXPECT_EQ(gp::heuristic_k(16, 1 << 20), 7u);
  EXPECT_EQ(gp::heuristic_k(31, 1 << 20), 7u);
  EXPECT_EQ(gp::heuristic_k(32, 1 << 20), 6u);
  EXPECT_EQ(gp::heuristic_k(511, 1 << 20), 6u);
  EXPECT_EQ(gp::heuristic_k(512, 1 << 20), 5u);
  EXPECT_EQ(gp::heuristic_k(1023, 1 << 20), 5u);
  EXPECT_EQ(gp::heuristic_k(1024, 1 << 20), 0u);
  EXPECT_EQ(gp::heuristic_k(16384, 1 << 20), 0u);
}

TEST(Transition, HeuristicClampsToSystemSize) {
  EXPECT_LE(std::size_t{1} << gp::heuristic_k(1, 64), 32u);
  EXPECT_EQ(gp::heuristic_k(1, 2), 0u);
}

TEST(Transition, CostFormulasMatchTable2) {
  // Thomas, M <= P: span = 2*2^n - 1 regardless of M.
  EXPECT_DOUBLE_EQ(gp::cost_thomas(4, 9, 1024.0), 2.0 * 512 - 1);
  EXPECT_DOUBLE_EQ(gp::cost_thomas(1, 9, 1024.0), 2.0 * 512 - 1);
  // Thomas, M > P: amortized.
  EXPECT_DOUBLE_EQ(gp::cost_thomas(2048, 9, 1024.0), 2.0 * (2.0 * 512 - 1));
  // PCR always divides by P.
  EXPECT_DOUBLE_EQ(gp::cost_pcr(16, 9, 1024.0), 16.0 / 1024.0 * (9.0 * 512 + 1));
  // Hybrid with k = 0 equals Thomas' work term.
  EXPECT_DOUBLE_EQ(gp::cost_hybrid(2048, 9, 1024.0, 0),
                   2048.0 / 1024.0 * 2.0 * (512 - 1));
}

TEST(Transition, ModelPrefersLargeKForFewSystems) {
  const auto dev = gs::gtx480();
  const unsigned k_single = gp::model_best_k(1, 1 << 21, dev);
  const unsigned k_many = gp::model_best_k(16384, 512, dev);
  EXPECT_GE(k_single, 6u);
  EXPECT_EQ(k_many, 0u);
  // Monotone trend: more systems -> smaller or equal k.
  unsigned prev = 32;
  for (std::size_t m : {1u, 16u, 64u, 512u, 2048u, 16384u}) {
    const unsigned k = gp::model_best_k(m, 1 << 14, dev);
    EXPECT_LE(k, prev) << "M=" << m;
    prev = k;
  }
}

// ---- Hybrid end-to-end ----------------------------------------------------

class HybridShapes
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(HybridShapes, SolvesDominantBatch) {
  const auto [m, n] = GetParam();
  const auto dev = gs::gtx480();
  const auto layout = gp::heuristic_k(m, n) == 0 ? td::Layout::interleaved
                                                 : td::Layout::contiguous;
  auto batch = wl::make_batch<double>(wl::Kind::random_dominant, m, n, layout,
                                      m * 1000 + n);
  const auto orig = batch.clone();
  const auto report = gp::hybrid_solve(dev, batch);
  EXPECT_EQ(report.k, gp::heuristic_k(m, n));
  check_solved(batch, orig, 1e-8);
}

using MN = std::tuple<std::size_t, std::size_t>;
INSTANTIATE_TEST_SUITE_P(
    Shapes, HybridShapes,
    ::testing::Values(MN{1, 4096}, MN{1, 1000}, MN{4, 2048}, MN{16, 1024},
                      MN{40, 555}, MN{512, 128}, MN{600, 333}, MN{1024, 64},
                      MN{2048, 100}));

TEST(Hybrid, ForcedKValuesAllCorrect) {
  const auto dev = gs::gtx480();
  for (int k : {0, 1, 2, 3, 4, 5, 6, 7, 8}) {
    auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 4, 700,
                                        td::Layout::contiguous, 99 + k);
    const auto orig = batch.clone();
    gp::HybridOptions opts;
    opts.force_k = k;
    const auto report = gp::hybrid_solve(dev, batch, opts);
    EXPECT_EQ(report.k, static_cast<unsigned>(k));
    check_solved(batch, orig, 1e-8);
  }
}

TEST(Hybrid, AllVariantsAgree) {
  const auto dev = gs::gtx480();
  for (auto variant : {gp::WindowVariant::one_block_per_system,
                       gp::WindowVariant::split_system,
                       gp::WindowVariant::multi_system_per_block}) {
    auto batch = wl::make_batch<double>(wl::Kind::adi_sweep, 6, 2000,
                                        td::Layout::contiguous, 5);
    const auto orig = batch.clone();
    gp::HybridOptions opts;
    opts.force_k = 5;
    opts.variant = variant;
    const auto report = gp::hybrid_solve(dev, batch, opts);
    EXPECT_EQ(report.variant, variant);
    check_solved(batch, orig, 1e-8);
  }
}

TEST(Hybrid, SplitSystemReportsRedundantLoads) {
  const auto dev = gs::gtx480();
  auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 1, 65536,
                                      td::Layout::contiguous, 3);
  const auto orig = batch.clone();
  gp::HybridOptions opts;
  opts.force_k = 6;
  opts.variant = gp::WindowVariant::split_system;
  const auto report = gp::hybrid_solve(dev, batch, opts);
  EXPECT_GT(report.redundant_loads, 0u);
  check_solved(batch, orig, 1e-8);
}

TEST(Hybrid, FusedMatchesUnfused) {
  const auto dev = gs::gtx480();
  auto fused = wl::make_batch<double>(wl::Kind::random_dominant, 8, 1024,
                                      td::Layout::contiguous, 11);
  auto plain = fused.clone();
  const auto orig = fused.clone();

  gp::HybridOptions fo;
  fo.force_k = 5;
  fo.fuse = true;
  const auto fr = gp::hybrid_solve(dev, fused, fo);
  gp::HybridOptions po;
  po.force_k = 5;
  po.variant = gp::WindowVariant::one_block_per_system;
  const auto pr = gp::hybrid_solve(dev, plain, po);

  check_solved(fused, orig, 1e-8);
  // Fusion skips the separate forward kernel: fewer launches and less
  // global traffic.
  EXPECT_LT(fr.timeline.segments().size(), pr.timeline.segments().size());
  double fused_bytes = 0.0, plain_bytes = 0.0;
  for (const auto& s : fr.timeline.segments()) {
    fused_bytes += static_cast<double>(s.stats.costs.bytes_requested);
  }
  for (const auto& s : pr.timeline.segments()) {
    plain_bytes += static_cast<double>(s.stats.costs.bytes_requested);
  }
  EXPECT_LT(fused_bytes, plain_bytes * 0.75);
}

TEST(Hybrid, FloatPrecision) {
  const auto dev = gs::gtx480();
  auto batch = wl::make_batch<float>(wl::Kind::toeplitz, 32, 512,
                                     td::Layout::contiguous, 17);
  const auto orig = batch.clone();
  const auto report = gp::hybrid_solve(dev, batch);
  EXPECT_GT(report.k, 0u);
  check_solved(batch, orig, 2e-3);
}

TEST(Hybrid, KZeroUsesNoPcr) {
  const auto dev = gs::gtx480();
  auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 2048, 64,
                                      td::Layout::interleaved, 23);
  const auto orig = batch.clone();
  const auto report = gp::hybrid_solve(dev, batch);
  EXPECT_EQ(report.k, 0u);
  EXPECT_DOUBLE_EQ(report.pcr_us(), 0.0);
  EXPECT_EQ(report.reduced_systems, 2048u);
  check_solved(batch, orig, 1e-9);
}

TEST(Hybrid, ReducedSystemCountIsMTimes2K) {
  const auto dev = gs::gtx480();
  auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 4, 512,
                                      td::Layout::contiguous, 29);
  gp::HybridOptions opts;
  opts.force_k = 4;
  const auto report = gp::hybrid_solve(dev, batch, opts);
  EXPECT_EQ(report.reduced_systems, 4u * 16u);
}

TEST(Hybrid, PcrShareOfRuntime) {
  // §IV reports tiled PCR's share of the runtime: ~55% at M=1 and a
  // nonzero share whenever k >= 1; it is exactly zero in the k = 0 regime.
  // (The simulator reproduces the M=1 split well — 44% vs the paper's
  // ~55% at N=2M — but assigns PCR a larger share at mid-M than the
  // paper's quoted 6.25%/36.2%; see EXPERIMENTS.md for the analysis.)
  const auto dev = gs::gtx480();

  auto single = wl::make_batch<double>(wl::Kind::random_dominant, 1, 65536,
                                       td::Layout::contiguous, 1);
  const auto r1 = gp::hybrid_solve(dev, single);
  EXPECT_EQ(r1.k, 8u);
  EXPECT_GT(r1.pcr_fraction(), 0.2);
  EXPECT_LT(r1.pcr_fraction(), 0.8);

  auto mid = wl::make_batch<double>(wl::Kind::random_dominant, 16, 16384,
                                    td::Layout::contiguous, 2);
  const auto r2 = gp::hybrid_solve(dev, mid);
  EXPECT_GT(r2.pcr_fraction(), 0.0);
  EXPECT_GT(r2.thomas_us(), 0.0);

  auto many = wl::make_batch<double>(wl::Kind::random_dominant, 4096, 64,
                                     td::Layout::interleaved, 3);
  const auto r3 = gp::hybrid_solve(dev, many);
  EXPECT_EQ(r3.k, 0u);
  EXPECT_DOUBLE_EQ(r3.pcr_fraction(), 0.0);
}

TEST(Hybrid, WorkloadKindsAllSolve) {
  const auto dev = gs::gtx480();
  for (auto kind : {wl::Kind::toeplitz, wl::Kind::poisson1d, wl::Kind::adi_sweep,
                    wl::Kind::spline}) {
    auto batch =
        wl::make_batch<double>(kind, 48, 800, td::Layout::contiguous, 31);
    const auto orig = batch.clone();
    gp::hybrid_solve(dev, batch);
    check_solved(batch, orig, 1e-8);
  }
}
