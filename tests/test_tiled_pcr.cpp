// Tiled PCR tests — the paper's central §III.A claims, measured:
//  * dependency-cached streaming is bit-exact vs plain PCR,
//  * zero redundant loads/eliminations with the sliding window,
//  * naive halo tiling pays exactly f(k) loads and g(k) eliminations
//    per boundary (Eqs. 8-9),
//  * cache footprint stays within the paper's bound.

#include <gtest/gtest.h>

#include <vector>

#include "tridiag/pcr.hpp"
#include "tridiag/tiled_pcr.hpp"
#include "workloads/generators.hpp"

namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;
using tridsolve::util::Xoshiro256;

namespace {

td::TridiagSystem<double> random_system(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  td::TridiagSystem<double> s(n);
  wl::fill_matrix(wl::Kind::random_dominant, s.ref(), rng);
  wl::fill_rhs_random(s.ref(), rng);
  return s;
}

void expect_bitwise_equal(const td::TridiagSystem<double>& x,
                          const td::TridiagSystem<double>& y) {
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(x.a()[i], y.a()[i]) << i;
    EXPECT_EQ(x.b()[i], y.b()[i]) << i;
    EXPECT_EQ(x.c()[i], y.c()[i]) << i;
    EXPECT_EQ(x.d()[i], y.d()[i]) << i;
  }
}

}  // namespace

class TiledPcrParam : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>> {};

TEST_P(TiledPcrParam, BitExactVersusPlainPcr) {
  const auto [n, k] = GetParam();
  auto tiled = random_system(n, 1000 + n + k);
  auto plain = tiled.clone();
  td::tiled_pcr_reduce(tiled.ref(), k);
  td::pcr_reduce(plain.ref(), k);
  expect_bitwise_equal(tiled, plain);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSteps, TiledPcrParam,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 7, 8, 16, 17, 63,
                                                      64, 100, 255, 1024, 1000),
                       ::testing::Values<unsigned>(1, 2, 3, 4, 6, 8)));

TEST(TiledPcr, ZeroRedundancyCounters) {
  const std::size_t n = 4096;
  for (unsigned k : {1u, 3u, 6u, 8u}) {
    auto s = random_system(n, k);
    const auto c = td::tiled_pcr_reduce(s.ref(), k);
    EXPECT_EQ(c.global_row_loads, n) << "k=" << k;
    EXPECT_EQ(c.eliminations, k * n) << "k=" << k;
    EXPECT_EQ(c.redundant_loads(n), 0u);
    EXPECT_EQ(c.redundant_elims(n, k), 0u);
  }
}

TEST(TiledPcr, CacheFootprintIsTwoFkPlusK) {
  // Live intermediate state: sum_j (2^{j+1} + 1) = 2*f(k) + k rows — the
  // paper's 2*f(k) minimum plus one in-flight row per level, well under
  // the 3*f(k) the buffered sliding window reserves.
  const std::size_t n = 2048;
  for (unsigned k : {1u, 2u, 4u, 8u}) {
    auto s = random_system(n, 77 + k);
    const auto c = td::tiled_pcr_reduce(s.ref(), k);
    EXPECT_EQ(c.cache_rows_peak, 2 * td::pcr_halo(k) + k) << "k=" << k;
    EXPECT_LE(c.cache_rows_peak, 3 * td::pcr_halo(k) + k) << "k=" << k;
  }
}

TEST(NaiveTiledPcr, MatchesPlainPcrValues) {
  for (std::size_t tile : {8u, 32u, 100u}) {
    for (unsigned k : {1u, 2u, 4u}) {
      auto naive = random_system(512, tile * 10 + k);
      auto plain = naive.clone();
      td::naive_tiled_pcr_reduce(naive.ref(), k, tile);
      td::pcr_reduce(plain.ref(), k);
      ASSERT_EQ(naive.size(), plain.size());
      for (std::size_t i = 0; i < naive.size(); ++i) {
        EXPECT_NEAR(naive.b()[i], plain.b()[i], 1e-12) << "i=" << i;
        EXPECT_NEAR(naive.d()[i], plain.d()[i], 1e-12) << "i=" << i;
      }
    }
  }
}

TEST(NaiveTiledPcr, RedundantLoadsMatchEq8) {
  // Interior tile boundaries each cost f(k) redundant loads per side.
  const std::size_t n = 1024;
  const std::size_t tile = 64;
  const std::size_t num_tiles = n / tile;
  for (unsigned k : {1u, 2u, 3u, 4u, 5u}) {
    auto s = random_system(n, k);
    const auto c = td::naive_tiled_pcr_reduce(s.ref(), k, tile);
    // Each of the (num_tiles - 1) interior boundaries is loaded redundantly
    // from both sides: 2 * f(k) extra rows per boundary.
    const std::size_t expected = 2 * td::pcr_halo(k) * (num_tiles - 1);
    EXPECT_EQ(c.redundant_loads(n), expected) << "k=" << k;
  }
}

TEST(NaiveTiledPcr, RedundantElimsMatchEq9) {
  const std::size_t n = 1024;
  const std::size_t tile = 128;
  const std::size_t num_tiles = n / tile;
  for (unsigned k : {1u, 2u, 3u, 4u, 5u}) {
    auto s = random_system(n, 10 + k);
    const auto c = td::naive_tiled_pcr_reduce(s.ref(), k, tile);
    const std::size_t expected = 2 * td::pcr_redundant_elims(k) * (num_tiles - 1);
    EXPECT_EQ(c.redundant_elims(n, k), expected) << "k=" << k;
  }
}

TEST(NaiveTiledPcr, RedundancyGrowsExponentiallyInK) {
  // The motivation for dependency caching: halo cost doubles per step.
  const std::size_t n = 8192, tile = 512;
  std::size_t prev = 0;
  for (unsigned k = 1; k <= 6; ++k) {
    auto s = random_system(n, 90 + k);
    const auto c = td::naive_tiled_pcr_reduce(s.ref(), k, tile);
    const std::size_t redundant = c.redundant_loads(n);
    if (k > 1) {
      EXPECT_GT(redundant, prev * 3 / 2) << "k=" << k;
    }
    prev = redundant;
  }
}

TEST(TiledPcr, KZeroIsNoOp) {
  auto s = random_system(64, 5);
  auto orig = s.clone();
  const auto c = td::tiled_pcr_reduce(s.ref(), 0);
  EXPECT_EQ(c.eliminations, 0u);
  expect_bitwise_equal(s, orig);
}

TEST(TiledPcr, TileNotDividingN) {
  auto naive = random_system(1000, 6);
  auto plain = naive.clone();
  td::naive_tiled_pcr_reduce(naive.ref(), 3, 37);  // 37 does not divide 1000
  td::pcr_reduce(plain.ref(), 3);
  for (std::size_t i = 0; i < naive.size(); ++i) {
    EXPECT_NEAR(naive.d()[i], plain.d()[i], 1e-12) << i;
  }
}
