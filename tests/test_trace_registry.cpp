// Tests for the trace/report module and the solver registry.

#include <gtest/gtest.h>

#include "gpu_solvers/registry.hpp"
#include "gpusim/trace.hpp"
#include "workloads/generators.hpp"

namespace gs = tridsolve::gpusim;
namespace gp = tridsolve::gpu;
namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;

namespace {

gs::Timeline sample_timeline(const gs::DeviceSpec& dev) {
  gs::Timeline tl;
  std::vector<double> data(4096, 1.0);
  auto stats = gs::launch(dev, {4, 64}, [&](gs::BlockContext& ctx) {
    ctx.phase([&](gs::ThreadCtx& t) {
      (void)t.load(&data[static_cast<std::size_t>(t.tid())]);
      t.flops<double>(4);
    });
  });
  tl.add("loader", stats);
  tl.add_fixed("host-combine", 3.5);
  return tl;
}

}  // namespace

TEST(Trace, DescribeLaunchMentionsKeyFacts) {
  const auto dev = gs::gtx480();
  const auto tl = sample_timeline(dev);
  const auto desc = gs::describe_launch(dev, tl.segments()[0].stats);
  EXPECT_NE(desc.find("<<<4,64>>>"), std::string::npos);
  EXPECT_NE(desc.find("bound"), std::string::npos);
  EXPECT_NE(desc.find("occ="), std::string::npos);
}

TEST(Trace, TimelineTableHasAllSegmentsPlusTotal) {
  const auto dev = gs::gtx480();
  const auto tl = sample_timeline(dev);
  const auto table = gs::timeline_table(dev, tl);
  EXPECT_EQ(table.row_count(), 3u);  // loader + host-combine + total
  const auto text = table.to_ascii();
  EXPECT_NE(text.find("loader"), std::string::npos);
  EXPECT_NE(text.find("host-combine"), std::string::npos);
  EXPECT_NE(text.find("total"), std::string::npos);
}

TEST(Trace, TotalsAggregate) {
  const auto dev = gs::gtx480();
  const auto tl = sample_timeline(dev);
  const auto totals = gs::summarize_timeline(dev, tl);
  // The fixed segment is a host-side step, not a kernel launch.
  EXPECT_EQ(totals.launches, 1u);
  EXPECT_EQ(totals.host_segments, 1u);
  EXPECT_DOUBLE_EQ(totals.host_us, 3.5);
  EXPECT_DOUBLE_EQ(totals.kernel_us + totals.host_us, totals.time_us);
  EXPECT_DOUBLE_EQ(totals.time_us, tl.total_us());
  EXPECT_GT(totals.transactions, 0u);
  EXPECT_GT(totals.coalescing_efficiency(), 0.3);
  EXPECT_LE(totals.coalescing_efficiency(), 1.0);
}

TEST(Trace, HostSegmentsRenderAsHostNotFakeLaunch) {
  const auto dev = gs::gtx480();
  const auto tl = sample_timeline(dev);
  const auto table = gs::timeline_table(dev, tl);
  const auto json = table.to_json();
  // The host-combine row must not pretend to be a <<<1,1>>> kernel.
  EXPECT_EQ(json.find("<<<1,1>>>"), std::string::npos);
  EXPECT_NE(json.find("host"), std::string::npos);
  const auto desc = gs::describe_segment(dev, tl.segments()[1]);
  EXPECT_NE(desc.find("host"), std::string::npos);
  EXPECT_EQ(desc.find("<<<"), std::string::npos);
}

TEST(Registry, NamesAreDistinct) {
  const auto kinds = gp::all_solver_kinds();
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    for (std::size_t j = i + 1; j < kinds.size(); ++j) {
      EXPECT_STRNE(gp::solver_name(kinds[i]), gp::solver_name(kinds[j]));
    }
  }
}

TEST(Registry, AllSolversRunOnSmallSystems) {
  const auto dev = gs::gtx480();
  const auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 32, 256,
                                            td::Layout::contiguous, 3);
  for (const auto kind : gp::all_solver_kinds()) {
    const auto outcome = gp::run_solver(kind, dev, batch);
    EXPECT_TRUE(outcome.supported) << gp::solver_name(kind) << ": "
                                   << outcome.detail;
    EXPECT_GT(outcome.time_us, 0.0) << gp::solver_name(kind);
    EXPECT_GE(outcome.launches, 1u) << gp::solver_name(kind);
  }
}

TEST(Registry, InSharedSolversRejectLargeSystems) {
  const auto dev = gs::gtx480();
  const auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 2, 8192,
                                            td::Layout::contiguous, 4);
  EXPECT_FALSE(gp::run_solver(gp::SolverKind::zhang, dev, batch).supported);
  EXPECT_FALSE(gp::run_solver(gp::SolverKind::cr, dev, batch).supported);
  EXPECT_TRUE(gp::run_solver(gp::SolverKind::hybrid, dev, batch).supported);
  EXPECT_TRUE(gp::run_solver(gp::SolverKind::davidson, dev, batch).supported);
}

TEST(Registry, DoesNotModifyInput) {
  const auto dev = gs::gtx480();
  const auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 4, 128,
                                            td::Layout::contiguous, 5);
  const auto before = batch.clone();
  (void)gp::run_solver(gp::SolverKind::hybrid, dev, batch);
  for (std::size_t i = 0; i < batch.total_rows(); ++i) {
    EXPECT_EQ(batch.d()[i], before.d()[i]);
    EXPECT_EQ(batch.b()[i], before.b()[i]);
  }
}

TEST(Registry, DavidsonAdaptsTileToDevice) {
  // GTX280 has 16 KB shared: the Davidson baseline must shrink its tile
  // instead of failing to launch.
  const auto dev = gs::gtx280();
  const auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 2, 4096,
                                            td::Layout::contiguous, 6);
  const auto outcome = gp::run_solver(gp::SolverKind::davidson, dev, batch);
  EXPECT_TRUE(outcome.supported) << outcome.detail;
}
