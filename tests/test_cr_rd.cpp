// Cyclic reduction and recursive doubling tests: accuracy against the
// pivoting-LU referee on every workload class and assorted sizes.

#include <gtest/gtest.h>

#include <vector>

#include "tridiag/cyclic_reduction.hpp"
#include "tridiag/lu_pivot.hpp"
#include "tridiag/recursive_doubling.hpp"
#include "tridiag/residual.hpp"
#include "util/aligned_buffer.hpp"
#include "util/stats.hpp"
#include "workloads/generators.hpp"

namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;
using tridsolve::util::AlignedBuffer;
using tridsolve::util::Xoshiro256;

namespace {

td::TridiagSystem<double> make_system(wl::Kind kind, std::size_t n,
                                      std::uint64_t seed) {
  Xoshiro256 rng(seed);
  td::TridiagSystem<double> s(n);
  wl::fill_matrix(kind, s.ref(), rng);
  wl::fill_rhs_random(s.ref(), rng);
  return s;
}

std::vector<double> reference_solution(const td::TridiagSystem<double>& s) {
  auto copy = s.clone();
  std::vector<double> x(s.size());
  EXPECT_TRUE(
      td::lu_gtsv(copy.ref(), td::StridedView<double>(x.data(), x.size(), 1)).ok());
  return x;
}

}  // namespace

class CrSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrSizes, MatchesReference) {
  const std::size_t n = GetParam();
  auto s = make_system(wl::Kind::random_dominant, n, n * 3 + 5);
  const auto ref = reference_solution(s);
  AlignedBuffer<double> x(n);
  ASSERT_TRUE(td::cr_solve(s.ref(), td::StridedView<double>(x.span())).ok());
  EXPECT_LT(tridsolve::util::max_abs_diff(x.span(), std::span<const double>(ref)),
            1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllSizes, CrSizes,
                         ::testing::Values<std::size_t>(1, 2, 3, 4, 5, 7, 8, 9,
                                                        15, 16, 17, 100, 128,
                                                        1000, 1024, 1025));

class RdSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RdSizes, MatchesReference) {
  const std::size_t n = GetParam();
  auto s = make_system(wl::Kind::random_dominant, n, n * 7 + 13);
  const auto ref = reference_solution(s);
  AlignedBuffer<double> x(n);
  ASSERT_TRUE(td::rd_solve(s.ref(), td::StridedView<double>(x.span())).ok());
  EXPECT_LT(tridsolve::util::max_abs_diff(x.span(), std::span<const double>(ref)),
            1e-8);
}

INSTANTIATE_TEST_SUITE_P(AllSizes, RdSizes,
                         ::testing::Values<std::size_t>(1, 2, 3, 4, 5, 7, 8, 9,
                                                        15, 16, 17, 100, 128,
                                                        1000, 1024, 1025));

TEST(Cr, AllWorkloadKinds) {
  for (auto kind : {wl::Kind::toeplitz, wl::Kind::poisson1d, wl::Kind::adi_sweep,
                    wl::Kind::spline}) {
    auto s = make_system(kind, 300, 21);
    auto copy = s.clone();
    AlignedBuffer<double> x(300);
    ASSERT_TRUE(td::cr_solve(s.ref(), td::StridedView<double>(x.span())).ok())
        << wl::kind_name(kind);
    EXPECT_LT(td::relative_residual(td::as_const(copy.ref()),
                                    td::StridedView<const double>(x.data(), 300, 1)),
              1e-12)
        << wl::kind_name(kind);
  }
}

TEST(Rd, AllWorkloadKinds) {
  for (auto kind : {wl::Kind::toeplitz, wl::Kind::poisson1d, wl::Kind::adi_sweep,
                    wl::Kind::spline}) {
    auto s = make_system(kind, 300, 22);
    auto copy = s.clone();
    AlignedBuffer<double> x(300);
    ASSERT_TRUE(td::rd_solve(s.ref(), td::StridedView<double>(x.span())).ok())
        << wl::kind_name(kind);
    EXPECT_LT(td::relative_residual(td::as_const(copy.ref()),
                                    td::StridedView<const double>(x.data(), 300, 1)),
              1e-10)
        << wl::kind_name(kind);
  }
}

TEST(Cr, NonDestructiveOnInput) {
  auto s = make_system(wl::Kind::random_dominant, 64, 9);
  const auto before = s.clone();
  AlignedBuffer<double> x(64);
  ASSERT_TRUE(td::cr_solve(s.ref(), td::StridedView<double>(x.span())).ok());
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(s.b()[i], before.b()[i]);
}

TEST(Cr, EliminationStepCount) {
  // ~2n total work: (npad - 1) forward + npad backward.
  EXPECT_EQ(td::cr_elimination_steps(1), 1u);
  EXPECT_EQ(td::cr_elimination_steps(8), 15u);  // 7 forward + 8 backward
  EXPECT_EQ(td::cr_elimination_steps(9), 31u);  // pads to 16
}

TEST(Rd, FloatPrecision) {
  Xoshiro256 rng(31);
  td::TridiagSystem<float> s(200);
  wl::fill_matrix(wl::Kind::toeplitz, s.ref(), rng);
  wl::fill_rhs_random(s.ref(), rng);
  auto copy = s.clone();
  AlignedBuffer<float> x(200);
  ASSERT_TRUE(td::rd_solve(s.ref(), td::StridedView<float>(x.span())).ok());
  EXPECT_LT(td::relative_residual(td::as_const(copy.ref()),
                                  td::StridedView<const float>(x.data(), 200, 1)),
            2e-5);
}

TEST(Cr, FloatPrecision) {
  Xoshiro256 rng(32);
  td::TridiagSystem<float> s(200);
  wl::fill_matrix(wl::Kind::toeplitz, s.ref(), rng);
  wl::fill_rhs_random(s.ref(), rng);
  auto copy = s.clone();
  AlignedBuffer<float> x(200);
  ASSERT_TRUE(td::cr_solve(s.ref(), td::StridedView<float>(x.span())).ok());
  EXPECT_LT(td::relative_residual(td::as_const(copy.ref()),
                                  td::StridedView<const float>(x.data(), 200, 1)),
            2e-5);
}
