// ADI integrator (apps library) tests: agreement with a host reference
// implementation, timeline structure, and physical sanity (decay,
// symmetry preservation).

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "apps/adi.hpp"
#include "obs/metrics.hpp"
#include "cpu_baselines/mkl_like.hpp"
#include "gpusim/device_spec.hpp"

namespace apps = tridsolve::apps;
namespace td = tridsolve::tridiag;
namespace cb = tridsolve::cpu;
namespace gs = tridsolve::gpusim;

namespace {

std::vector<double> sine_mode(std::size_t nx, std::size_t ny) {
  std::vector<double> u(nx * ny);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      u[iy * nx + ix] =
          std::sin(std::numbers::pi * double(ix + 1) / double(nx + 1)) *
          std::sin(std::numbers::pi * double(iy + 1) / double(ny + 1));
    }
  }
  return u;
}

/// Reference ADI step on the host: batched CPU gtsv solves + host
/// transposition, same Peaceman-Rachford splitting.
void reference_step(std::vector<double>& u, std::size_t nx, std::size_t ny,
                    double r) {
  auto sweep = [&](std::vector<double>& field, std::size_t lines,
                   std::size_t len) {
    td::SystemBatch<double> batch(lines, len, td::Layout::contiguous);
    for (std::size_t m = 0; m < lines; ++m) {
      auto sys = batch.system(m);
      for (std::size_t i = 0; i < len; ++i) {
        sys.a[i] = i == 0 ? 0.0 : -r;
        sys.b[i] = 1.0 + 2.0 * r;
        sys.c[i] = i + 1 == len ? 0.0 : -r;
        const double u_c = field[m * len + i];
        const double u_lo = m > 0 ? field[(m - 1) * len + i] : 0.0;
        const double u_hi = m + 1 < lines ? field[(m + 1) * len + i] : 0.0;
        sys.d[i] = u_c + r * (u_lo - 2.0 * u_c + u_hi);
      }
    }
    cb::solve_batch(batch);
    for (std::size_t m = 0; m < lines; ++m) {
      for (std::size_t i = 0; i < len; ++i) {
        field[m * len + i] = batch.d()[batch.index(m, i)];
      }
    }
  };
  auto transpose = [&](const std::vector<double>& in, std::size_t rows,
                       std::size_t cols) {
    std::vector<double> out(in.size());
    for (std::size_t rr = 0; rr < rows; ++rr) {
      for (std::size_t cc = 0; cc < cols; ++cc) {
        out[cc * rows + rr] = in[rr * cols + cc];
      }
    }
    return out;
  };

  sweep(u, ny, nx);
  auto t = transpose(u, ny, nx);
  sweep(t, nx, ny);
  u = transpose(t, nx, ny);
}

}  // namespace

TEST(AdiIntegrator, MatchesHostReference) {
  const std::size_t nx = 48, ny = 32;
  apps::AdiOptions opts;
  opts.r = 0.35;
  apps::AdiIntegrator<double> adi(gs::gtx480(), nx, ny, opts);

  auto u_gpu = sine_mode(nx, ny);
  auto u_ref = u_gpu;
  for (int s = 0; s < 3; ++s) {
    adi.step(u_gpu);
    reference_step(u_ref, nx, ny, opts.r);
  }
  for (std::size_t i = 0; i < u_gpu.size(); ++i) {
    ASSERT_NEAR(u_gpu[i], u_ref[i], 1e-11) << i;
  }
}

TEST(AdiIntegrator, TimelineHasSolvesAndTransposes) {
  apps::AdiIntegrator<double> adi(gs::gtx480(), 64, 64, {});
  auto u = sine_mode(64, 64);
  const auto rep = adi.step(u);
  EXPECT_GT(rep.solve_us(), 0.0);
  EXPECT_GT(rep.transpose_us(), 0.0);
  EXPECT_NEAR(rep.solve_us() + rep.transpose_us(), rep.total_us(), 1e-9);
  EXPECT_GE(rep.timeline.segments().size(), 4u);
}

TEST(AdiIntegrator, SineModeDecaysMonotonically) {
  apps::AdiIntegrator<double> adi(gs::gtx480(), 32, 32, {});
  auto u = sine_mode(32, 32);
  double prev = 1.0;
  for (int s = 0; s < 5; ++s) {
    adi.step(u);
    double peak = 0.0;
    for (double v : u) peak = std::max(peak, std::abs(v));
    EXPECT_LT(peak, prev);
    prev = peak;
  }
}

TEST(AdiIntegrator, PreservesXYSymmetryOnSquareGrid) {
  // A symmetric initial condition on a square grid must stay symmetric
  // under the full ADI double-sweep.
  const std::size_t n = 24;
  apps::AdiIntegrator<double> adi(gs::gtx480(), n, n, {});
  auto u = sine_mode(n, n);
  adi.step(u);
  adi.step(u);
  for (std::size_t iy = 0; iy < n; ++iy) {
    for (std::size_t ix = 0; ix < n; ++ix) {
      ASSERT_NEAR(u[iy * n + ix], u[ix * n + iy], 1e-12);
    }
  }
}

TEST(AdiIntegrator, RejectsBadInputs) {
  EXPECT_THROW(apps::AdiIntegrator<double>(gs::gtx480(), 0, 4, {}),
               std::invalid_argument);
  apps::AdiIntegrator<double> adi(gs::gtx480(), 8, 8, {});
  std::vector<double> wrong(7);
  EXPECT_THROW(adi.step(wrong), std::invalid_argument);
}

TEST(AdiIntegrator, FloatPath) {
  apps::AdiIntegrator<float> adi(gs::gtx480(), 16, 16, {});
  std::vector<float> u(16 * 16, 1.0f);
  const auto rep = adi.step(u);
  EXPECT_GT(rep.total_us(), 0.0);
  for (float v : u) {
    EXPECT_GT(v, 0.0f);
    EXPECT_LT(v, 1.0f);  // diffusion with zero boundaries shrinks everything
  }
}

TEST(AdiIntegrator, PlanReuseMatchesGpuPathClosely) {
  const std::size_t nx = 48, ny = 32;
  apps::AdiOptions gpu_opts;
  gpu_opts.r = 0.35;
  apps::AdiOptions plan_opts = gpu_opts;
  plan_opts.reuse_plans = true;

  apps::AdiIntegrator<double> gpu_adi(gs::gtx480(), nx, ny, gpu_opts);
  apps::AdiIntegrator<double> plan_adi(gs::gtx480(), nx, ny, plan_opts);

  auto u_gpu = sine_mode(nx, ny);
  auto u_plan = u_gpu;
  for (int s = 0; s < 3; ++s) {
    gpu_adi.step(u_gpu);
    plan_adi.step(u_plan);
  }
  // Same splitting, different elimination order (plan sweeps are pure
  // Thomas; the hybrid may run PCR steps first): agreement to rounding.
  for (std::size_t i = 0; i < u_gpu.size(); ++i) {
    ASSERT_NEAR(u_plan[i], u_gpu[i], 1e-11) << i;
  }
}

TEST(AdiIntegrator, PlanReuseFactorsOnceAndReportsHostSweeps) {
  auto& registry = tridsolve::obs::MetricsRegistry::instance();
  apps::AdiOptions opts;
  opts.reuse_plans = true;
  apps::AdiIntegrator<double> adi(gs::gtx480(), 32, 32, opts);

  auto u = sine_mode(32, 32);
  const double factors0 = registry.counter("tridiag.plan.batch_factors");
  const double solves0 = registry.counter("tridiag.plan.batch_solves");
  const auto rep = adi.step(u);
  // First step factors both sweep matrices; sweeps appear as host-side
  // timeline segments alongside the two device transposes.
  EXPECT_EQ(registry.counter("tridiag.plan.batch_factors"), factors0 + 2);
  EXPECT_EQ(registry.counter("tridiag.plan.batch_solves"), solves0 + 2);
  std::size_t plan_segments = 0;
  for (const auto& seg : rep.timeline.segments()) {
    if (seg.label == "sweep-x:plan" || seg.label == "sweep-y:plan") {
      ++plan_segments;
    }
  }
  EXPECT_EQ(plan_segments, 2u);
  EXPECT_GT(rep.transpose_us(), 0.0);

  for (int s = 0; s < 3; ++s) adi.step(u);
  // Later steps reuse the cached factorizations: factors flat, solves
  // climbing two per step.
  EXPECT_EQ(registry.counter("tridiag.plan.batch_factors"), factors0 + 2);
  EXPECT_EQ(registry.counter("tridiag.plan.batch_solves"), solves0 + 8);
}
