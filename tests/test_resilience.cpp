// Chaos suite for the deterministic fault injector (gpusim/fault_injector
// .hpp) and the resilient solve pipeline (tridiag/resilient_solve.hpp +
// gpu::run_solver_resilient).
//
// The load-bearing claims, each pinned here:
//  * Determinism — fault sites, retry counts and recovered bits are
//    identical for any --sim-threads value and instrument mode, because
//    site selection hashes (seed, launch, block, site) ordinals that do
//    not depend on scheduling.
//  * Recovery is bit-identical — for fault rates up to a threshold the
//    pipeline recovers every system within the entry stage's retries, and
//    the recovered solution is bit-for-bit the fault-free run's (the
//    hybrid's PCR depth is pinned across re-dispatches to make this hold).
//  * Structured failure, never silence — past the threshold the solve
//    still returns: every live-ok system passes a residual gate, every
//    unrecovered system carries a severity-ordered SolveCode, and an
//    exhausted deadline yields a *partial* result with pristine (not
//    garbage) right-hand sides, not a crash.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "gpu_solvers/registry.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/exec_engine.hpp"
#include "gpusim/fault_injector.hpp"
#include "tridiag/batch_status.hpp"
#include "tridiag/layout.hpp"
#include "tridiag/residual.hpp"
#include "tridiag/resilient_solve.hpp"
#include "workloads/generators.hpp"

namespace gs = tridsolve::gpusim;
namespace gp = tridsolve::gpu;
namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;

namespace {

constexpr std::size_t kSystems = 12;
constexpr std::size_t kN = 128;

td::SystemBatch<double> test_batch(td::Layout layout = td::Layout::contiguous) {
  return wl::make_batch<double>(wl::Kind::random_dominant, kSystems, kN,
                                layout, /*seed=*/2026);
}

/// Bit-exact comparison of system m's solution in two batches.
bool system_bits_equal(const td::SystemBatch<double>& a,
                       const td::SystemBatch<double>& b, std::size_t m) {
  const auto xa = td::as_const(a.system(m)).d;
  const auto xb = td::as_const(b.system(m)).d;
  for (std::size_t i = 0; i < a.system_size(); ++i) {
    // Bit-pattern equality (memcmp-strength), so even NaN-carrying
    // corrupted outputs can be checked for exact reproducibility. The
    // "recovered systems hold real numbers" claim is asserted separately
    // via residual gates.
    std::uint64_t ua = 0, ub = 0;
    const double va = xa[i], vb = xb[i];
    std::memcpy(&ua, &va, sizeof va);
    std::memcpy(&ub, &vb, sizeof vb);
    if (ua != ub) return false;
  }
  return true;
}

/// Fault-free reference solve of `kind` (guarded, so statuses exist).
gp::SolveOutcome reference_solve(gp::SolverKind kind,
                                 const td::SystemBatch<double>& batch,
                                 td::SystemBatch<double>* solution) {
  gp::SolverRunOptions opts;
  opts.guard = true;
  return gp::run_solver<double>(kind, gs::gtx480(), batch, opts, solution);
}

}  // namespace

// ---- BatchStatus attempt provenance ----------------------------------

TEST(BatchStatusProvenance, LiveIsLatestDetectedIsWorst) {
  td::BatchStatus st;
  st.resize(3);
  EXPECT_FALSE(st.has_provenance());

  // System 1: flagged by attempt 0, cleared by a clean retry.
  st.record_attempt(1, {td::SolveCode::zero_pivot, 7});
  EXPECT_TRUE(st.has_provenance());
  st.record_attempt(1, {td::SolveCode::ok, 0});
  EXPECT_EQ(st[1].code, td::SolveCode::ok) << "live = latest attempt";
  EXPECT_EQ(st.detected(1).code, td::SolveCode::zero_pivot)
      << "detection record is sticky";
  EXPECT_EQ(st.detected(1).index, 7u);
  EXPECT_EQ(st.attempts(1), 2u);

  // Severity merge in the detection record: launch_failed (4) outranks
  // timed_out (3); a later lower-severity attempt does not demote it.
  st.record_attempt(2, {td::SolveCode::timed_out, 0});
  st.record_attempt(2, {td::SolveCode::launch_failed, 0});
  st.record_attempt(2, {td::SolveCode::near_singular, 3});
  EXPECT_EQ(st[2].code, td::SolveCode::near_singular);
  EXPECT_EQ(st.detected(2).code, td::SolveCode::launch_failed);
  EXPECT_EQ(st.attempts(2), 3u);
  EXPECT_EQ(st.attempts(0), 0u);
  EXPECT_EQ(st.total_attempts(), 5u);

  st.resize(3);
  EXPECT_FALSE(st.has_provenance()) << "resize clears provenance";
}

TEST(BatchStatusProvenance, SeededFromPreAttemptState) {
  // absorb() before the first record_attempt (the guarded kernels'
  // in-launch flags) must survive into the detection record.
  td::BatchStatus st;
  st.resize(2);
  st.absorb(0, {td::SolveCode::singular, 4});
  st.record_attempt(0, {td::SolveCode::ok, 0});
  EXPECT_EQ(st[0].code, td::SolveCode::ok);
  EXPECT_EQ(st.detected(0).code, td::SolveCode::singular);
}

// ---- Fault-kind parsing ----------------------------------------------

TEST(FaultKinds, ParseAndName) {
  EXPECT_EQ(gs::parse_fault_kinds("all"), gs::kFaultAll);
  EXPECT_EQ(gs::parse_fault_kinds("none"), 0u);
  EXPECT_EQ(gs::parse_fault_kinds("flip,nan"),
            gs::kFaultGlobalFlip | gs::kFaultNanWrite);
  EXPECT_EQ(gs::parse_fault_kinds("shared-flip,launch-fail,timeout"),
            gs::kFaultSharedFlip | gs::kFaultLaunchFail | gs::kFaultTimeout);
  EXPECT_THROW((void)gs::parse_fault_kinds("cosmic-ray"),
               std::invalid_argument);
  EXPECT_EQ(gs::fault_kinds_name(gs::kFaultAll), "all");
  EXPECT_EQ(gs::fault_kinds_name(gs::kFaultGlobalFlip | gs::kFaultNanWrite),
            "flip,nan");
  EXPECT_EQ(gs::fault_kinds_name(0), "none");
}

// ---- Injector determinism across scheduling --------------------------

namespace {

struct FaultedRun {
  gp::SolveOutcome outcome;
  td::SystemBatch<double> solution;
};

FaultedRun faulted_plain_run(const gs::FaultPlan& plan, std::size_t threads,
                             gs::InstrumentMode mode) {
  const auto batch = test_batch();
  gs::ScopedSimThreads st(threads);
  gs::ScopedInstrumentMode im(mode);
  gs::ScopedFaultPlan fp(plan);  // install resets the launch ordinal
  FaultedRun run;
  gp::SolverRunOptions opts;
  opts.guard = true;
  run.outcome = gp::run_solver<double>(gp::SolverKind::pthomas_only,
                                       gs::gtx480(), batch, opts,
                                       &run.solution);
  return run;
}

}  // namespace

TEST(FaultInjector, SitesIndependentOfThreadsAndInstrument) {
  gs::FaultPlan plan;
  plan.seed = 41;
  plan.rate = 2e-4;
  plan.kinds = gs::kFaultGlobalFlip | gs::kFaultNanWrite;

  const FaultedRun ref = faulted_plain_run(plan, 1, gs::InstrumentMode::exact);
  ASSERT_TRUE(ref.outcome.supported);
  EXPECT_GT(ref.outcome.faults.total(), 0u) << "sweep must not be vacuous";

  for (const std::size_t threads : {std::size_t{2}, std::size_t{5}}) {
    for (const auto mode :
         {gs::InstrumentMode::exact, gs::InstrumentMode::sampled}) {
      const FaultedRun run = faulted_plain_run(plan, threads, mode);
      EXPECT_EQ(run.outcome.faults.bit_flips, ref.outcome.faults.bit_flips);
      EXPECT_EQ(run.outcome.faults.nan_writes, ref.outcome.faults.nan_writes);
      for (std::size_t m = 0; m < kSystems; ++m) {
        EXPECT_EQ(run.outcome.status[m].code, ref.outcome.status[m].code)
            << "system " << m;
        EXPECT_TRUE(system_bits_equal(run.solution, ref.solution, m))
            << "corrupted outputs must corrupt identically (system " << m
            << ", threads " << threads << ")";
      }
    }
  }
}

// ---- Registry-wide single-corruption property ------------------------

TEST(ResilientSolve, SingleCorruptionRecoveredOrSurfacedEveryKind) {
  const auto batch = test_batch();
  for (const gp::SolverKind kind : gp::all_solver_kinds()) {
    td::SystemBatch<double> ref_sol;
    const gp::SolveOutcome ref = reference_solve(kind, batch, &ref_sol);
    if (!ref.supported) continue;  // size caps etc.: nothing to corrupt

    gs::FaultPlan plan;
    plan.seed = 11;
    plan.pinpoint = true;
    plan.at_launch = 0;
    plan.at_block = 0;
    plan.at_site = 5;
    plan.pinpoint_kind = gs::kFaultGlobalFlip;
    gs::ScopedFaultPlan fp(plan);

    td::SystemBatch<double> sol;
    gp::ResilientOutcome ro;
    ASSERT_NO_THROW(ro = gp::run_solver_resilient<double>(
                        kind, gs::gtx480(), batch, {}, {}, &sol))
        << gp::solver_name(kind);
    EXPECT_EQ(ro.outcome.faults.total(), 1u)
        << gp::solver_name(kind) << ": exactly one injected corruption";

    // Either the corruption never reached the output (bits already match),
    // or it was detected and retried to a bit-identical result, or the
    // system is surfaced in the taxonomy — never silently wrong.
    for (std::size_t m = 0; m < kSystems; ++m) {
      if (ro.outcome.status[m].ok() && ro.report.fallback_stages == 0) {
        // Recovered within the entry stage: bit-identical to fault-free.
        EXPECT_TRUE(system_bits_equal(sol, ref_sol, m))
            << gp::solver_name(kind) << " system " << m;
      }
      if (ro.outcome.status[m].ok()) {
        const double rel = td::relative_residual(
            td::as_const(batch.system(m)), td::as_const(sol.system(m)).d);
        EXPECT_LT(rel, 1e-8) << gp::solver_name(kind) << " system " << m
                             << ": ok status must mean a real solution";
      } else {
        EXPECT_NE(td::solve_code_severity(ro.outcome.status[m].code), 0)
            << "non-ok code must rank in the taxonomy";
      }
    }
  }
}

// ---- The headline chaos sweep ----------------------------------------

TEST(ResilientSolve, ChaosSweepBitIdenticalUpToThreshold) {
  const auto batch = test_batch();
  td::SystemBatch<double> ref_sol;
  const gp::SolveOutcome ref =
      reference_solve(gp::SolverKind::hybrid, batch, &ref_sol);
  ASSERT_TRUE(ref.supported);

  std::uint64_t injected_total = 0;
  // The empirical threshold for this shape (12 x 128): ~12k candidate
  // sites per dispatch, so 1e-4 injects ~1 fault per attempt — within
  // what two retries absorb. 4e-4 (~5 faults per dispatch) already pushes
  // past the entry stage (covered by AboveThresholdStructuredNeverSilent).
  for (const double rate : {2e-5, 5e-5, 1e-4}) {
    gs::FaultPlan plan;
    plan.seed = 97;
    plan.rate = rate;
    plan.kinds = gs::kFaultGlobalFlip | gs::kFaultNanWrite |
                 gs::kFaultSharedFlip;
    gs::ScopedFaultPlan fp(plan);

    td::SystemBatch<double> sol;
    gp::ResilientOutcome ro;
    ASSERT_NO_THROW(ro = gp::run_solver_resilient<double>(
                        gp::SolverKind::hybrid, gs::gtx480(), batch, {}, {},
                        &sol))
        << "rate " << rate;
    injected_total += ro.outcome.faults.total();

    // Below the threshold every system recovers inside the entry stage's
    // retries — no fallback, no partial result — and the recovered
    // solution is bit-for-bit the fault-free hybrid's.
    EXPECT_EQ(ro.report.fallback_stages, 0u) << "rate " << rate;
    EXPECT_FALSE(ro.report.partial) << "rate " << rate;
    EXPECT_EQ(ro.report.worst, td::SolveCode::ok) << "rate " << rate;
    for (std::size_t m = 0; m < kSystems; ++m) {
      EXPECT_TRUE(system_bits_equal(sol, ref_sol, m))
          << "rate " << rate << " system " << m;
    }
  }
  EXPECT_GT(injected_total, 0u) << "sweep must actually inject faults";
}

TEST(ResilientSolve, AboveThresholdStructuredNeverSilent) {
  const auto batch = test_batch();
  gs::FaultPlan plan;
  plan.seed = 13;
  plan.rate = 0.02;
  plan.kinds = gs::kFaultAll;  // including launch failures and timeouts
  gs::ScopedFaultPlan fp(plan);

  td::SystemBatch<double> sol;
  gp::ResilientOutcome ro;
  ASSERT_NO_THROW(ro = gp::run_solver_resilient<double>(
                      gp::SolverKind::hybrid, gs::gtx480(), batch, {}, {},
                      &sol));
  EXPECT_GT(ro.outcome.faults.total(), 0u);

  // Whatever happened, the contract holds: live-ok systems solve the
  // system (residual-gated — no silent garbage), everything else carries
  // a taxonomy code, and partial is flagged iff something is unrecovered.
  std::size_t not_ok = 0;
  for (std::size_t m = 0; m < kSystems; ++m) {
    if (ro.outcome.status[m].ok()) {
      const double rel = td::relative_residual(td::as_const(batch.system(m)),
                                               td::as_const(sol.system(m)).d);
      EXPECT_LT(rel, 1e-8) << "system " << m;
    } else {
      ++not_ok;
    }
  }
  EXPECT_EQ(ro.report.partial, not_ok > 0);
  EXPECT_EQ(ro.outcome.flagged, not_ok);
  EXPECT_EQ(ro.report.worst == td::SolveCode::ok, not_ok == 0);
}

// ---- Launch failures, timeouts, deadlines ----------------------------

TEST(ResilientSolve, InjectedLaunchFailureIsRetriedBitIdentical) {
  const auto batch = test_batch();
  td::SystemBatch<double> ref_sol;
  ASSERT_TRUE(reference_solve(gp::SolverKind::hybrid, batch, &ref_sol)
                  .supported);

  gs::FaultPlan plan;
  plan.pinpoint = true;
  plan.at_launch = 0;
  plan.pinpoint_kind = gs::kFaultLaunchFail;
  gs::ScopedFaultPlan fp(plan);

  td::SystemBatch<double> sol;
  gp::ResilientOutcome ro;
  ASSERT_NO_THROW(ro = gp::run_solver_resilient<double>(
                      gp::SolverKind::hybrid, gs::gtx480(), batch, {}, {},
                      &sol));
  ASSERT_FALSE(ro.report.attempts.empty());
  EXPECT_EQ(ro.report.attempts[0].reason, td::SolveCode::launch_failed);
  EXPECT_EQ(ro.outcome.faults.launch_failures, 1u);
  EXPECT_GE(ro.report.retries, 1u);
  EXPECT_EQ(ro.report.worst, td::SolveCode::ok);
  for (std::size_t m = 0; m < kSystems; ++m) {
    // The retry runs in chunks smaller than the batch; the pinned PCR
    // depth keeps its arithmetic bit-identical to the full-batch run.
    EXPECT_TRUE(system_bits_equal(sol, ref_sol, m)) << "system " << m;
    EXPECT_EQ(ro.outcome.status.detected(m).code, td::SolveCode::launch_failed)
        << "provenance must remember the failed attempt";
  }
}

TEST(ResilientSolve, DeadlineYieldsPartialPristineResult) {
  const auto batch = test_batch();
  gs::FaultPlan plan;
  plan.seed = 5;
  plan.rate = 1.0;
  plan.kinds = gs::kFaultTimeout;  // every block of every launch overruns
  gs::ScopedFaultPlan fp(plan);

  td::ResiliencePolicy policy;
  policy.max_retries = 1;
  policy.deadline_us = 100.0;  // far less than one timed-out dispatch costs

  td::SystemBatch<double> sol;
  gp::ResilientOutcome ro;
  ASSERT_NO_THROW(ro = gp::run_solver_resilient<double>(
                      gp::SolverKind::hybrid, gs::gtx480(), batch, {}, policy,
                      &sol));
  EXPECT_TRUE(ro.report.deadline_exceeded);
  EXPECT_TRUE(ro.report.partial);
  EXPECT_EQ(ro.report.worst, td::SolveCode::deadline);
  EXPECT_GT(ro.outcome.faults.timeouts, 0u);
  EXPECT_GE(ro.report.spent_us, policy.deadline_us);
  for (std::size_t m = 0; m < kSystems; ++m) {
    EXPECT_EQ(ro.outcome.status[m].code, td::SolveCode::deadline);
    // Unrecovered systems keep their pristine right-hand side — a partial
    // result is honest, never garbage.
    EXPECT_TRUE(system_bits_equal(sol, batch, m)) << "system " << m;
  }
}

TEST(ResilientSolve, FallbackChainRecoversUnderTotalLaunchFailure) {
  // Every GPU launch fails: the pipeline must walk the chain down to the
  // fault-immune host stages and still produce a fully-recovered result.
  const auto batch = test_batch();
  gs::FaultPlan plan;
  plan.seed = 3;
  plan.rate = 1.0;
  plan.kinds = gs::kFaultLaunchFail;
  gs::ScopedFaultPlan fp(plan);

  td::SystemBatch<double> sol;
  gp::ResilientOutcome ro;
  ASSERT_NO_THROW(ro = gp::run_solver_resilient<double>(
                      gp::SolverKind::hybrid, gs::gtx480(), batch, {}, {},
                      &sol));
  EXPECT_EQ(ro.report.worst, td::SolveCode::ok);
  EXPECT_FALSE(ro.report.partial);
  EXPECT_GE(ro.report.fallback_stages, 1u);
  for (std::size_t m = 0; m < kSystems; ++m) {
    EXPECT_TRUE(ro.outcome.status[m].ok());
    EXPECT_EQ(ro.outcome.status.detected(m).code, td::SolveCode::launch_failed);
    const double rel = td::relative_residual(td::as_const(batch.system(m)),
                                             td::as_const(sol.system(m)).d);
    EXPECT_LT(rel, 1e-10) << "system " << m;
  }
}

// ---- The cross-thread determinism pin --------------------------------

TEST(ResilientSolve, PipelineDeterministicAcrossSimThreads) {
  const auto batch = test_batch();
  gs::FaultPlan plan;
  plan.seed = 29;
  plan.rate = 3e-4;
  plan.kinds = gs::kFaultGlobalFlip | gs::kFaultNanWrite |
               gs::kFaultSharedFlip;

  struct Run {
    gp::ResilientOutcome ro;
    td::SystemBatch<double> sol;
  };
  const auto run_with = [&](std::size_t threads) {
    gs::ScopedSimThreads st(threads);
    gs::ScopedFaultPlan fp(plan);
    Run r;
    r.ro = gp::run_solver_resilient<double>(gp::SolverKind::hybrid,
                                            gs::gtx480(), batch, {}, {},
                                            &r.sol);
    return r;
  };

  const Run a = run_with(1);
  const Run b = run_with(4);
  EXPECT_GT(a.ro.outcome.faults.total(), 0u);

  // Identical fault sites -> identical counts, attempts, retries, per-
  // system provenance and output bits.
  EXPECT_EQ(a.ro.outcome.faults.bit_flips, b.ro.outcome.faults.bit_flips);
  EXPECT_EQ(a.ro.outcome.faults.nan_writes, b.ro.outcome.faults.nan_writes);
  EXPECT_EQ(a.ro.outcome.faults.shared_corruptions,
            b.ro.outcome.faults.shared_corruptions);
  EXPECT_EQ(a.ro.report.retries, b.ro.report.retries);
  EXPECT_EQ(a.ro.report.fallback_stages, b.ro.report.fallback_stages);
  ASSERT_EQ(a.ro.report.attempts.size(), b.ro.report.attempts.size());
  for (std::size_t i = 0; i < a.ro.report.attempts.size(); ++i) {
    const auto& aa = a.ro.report.attempts[i];
    const auto& bb = b.ro.report.attempts[i];
    EXPECT_EQ(aa.stage, bb.stage) << "attempt " << i;
    EXPECT_EQ(aa.attempt, bb.attempt) << "attempt " << i;
    EXPECT_EQ(aa.systems, bb.systems) << "attempt " << i;
    EXPECT_EQ(aa.recovered, bb.recovered) << "attempt " << i;
    EXPECT_EQ(aa.still_flagged, bb.still_flagged) << "attempt " << i;
    EXPECT_EQ(aa.reason, bb.reason) << "attempt " << i;
  }
  for (std::size_t m = 0; m < kSystems; ++m) {
    EXPECT_EQ(a.ro.outcome.status[m].code, b.ro.outcome.status[m].code);
    EXPECT_EQ(a.ro.outcome.status.attempts(m), b.ro.outcome.status.attempts(m));
    EXPECT_TRUE(system_bits_equal(a.sol, b.sol, m)) << "system " << m;
  }
}

// ---- Policy plumbing --------------------------------------------------

TEST(ResilientSolve, EnginePolicyAndFallbackChain) {
  auto& engine = gs::ExecutionEngine::instance();
  const double prev_deadline = engine.default_deadline_us();
  const int prev_retries = engine.default_max_retries();
  engine.set_default_deadline_us(1234.5);
  engine.set_default_max_retries(7);
  const td::ResiliencePolicy policy = gp::engine_resilience_policy();
  EXPECT_EQ(policy.deadline_us, 1234.5);
  EXPECT_EQ(policy.max_retries, 7);
  engine.set_default_deadline_us(prev_deadline);
  engine.set_default_max_retries(prev_retries);

  const auto chain = gp::default_fallback_chain(gp::SolverKind::hybrid);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], "pthomas");
  EXPECT_EQ(chain[1], "cpu-thomas");
  EXPECT_EQ(chain[2], "lu");
  // A pthomas entry elides the duplicate stage.
  const auto pchain = gp::default_fallback_chain(gp::SolverKind::pthomas_only);
  ASSERT_EQ(pchain.size(), 2u);
  EXPECT_EQ(pchain[0], "cpu-thomas");

  // Unknown stage names in a custom chain are rejected up front.
  td::ResiliencePolicy bad;
  bad.fallback_chain = {"warp-shuffle-9000"};
  const auto batch = test_batch();
  EXPECT_THROW((void)gp::run_solver_resilient<double>(
                   gp::SolverKind::hybrid, gs::gtx480(), batch, {}, bad,
                   nullptr),
               std::invalid_argument);
}
