// GPU register-packed partition solver tests: agreement with the host
// partition method and the pivoting-LU referee, timeline structure, and
// edge cases.

#include <gtest/gtest.h>

#include <vector>

#include "gpu_solvers/partition_kernel.hpp"
#include "gpusim/device_spec.hpp"
#include "tridiag/lu_pivot.hpp"
#include "tridiag/partition.hpp"
#include "workloads/generators.hpp"

namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;
namespace gp = tridsolve::gpu;
namespace gs = tridsolve::gpusim;

class PartitionGpuShapes
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(PartitionGpuShapes, MatchesHostPartitionAndReferee) {
  const auto [m_count, n, p] = GetParam();
  const auto dev = gs::gtx480();
  auto batch = wl::make_batch<double>(wl::Kind::random_dominant, m_count, n,
                                      td::Layout::contiguous, m_count * n + p);
  const auto orig = batch.clone();

  gp::PartitionGpuOptions opts;
  opts.packet = p;
  gp::partition_solve_gpu<double>(dev, batch, opts);

  std::vector<double> x_host(n), x_ref(n);
  for (std::size_t m = 0; m < m_count; ++m) {
    auto check = orig.clone();
    auto sys = check.system(m);
    ASSERT_TRUE(td::partition_solve<double>(
                    sys, td::StridedView<double>(x_host.data(), n, 1), p)
                    .ok());
    ASSERT_TRUE(
        td::lu_gtsv<double>(sys, td::StridedView<double>(x_ref.data(), n, 1)).ok());
    for (std::size_t i = 0; i < n; ++i) {
      // Same arithmetic as the host partition method: exact agreement.
      ASSERT_EQ(batch.d()[batch.index(m, i)], x_host[i])
          << "m=" << m << " i=" << i;
      ASSERT_NEAR(batch.d()[batch.index(m, i)], x_ref[i], 1e-9);
    }
  }
}

using MNP = std::tuple<std::size_t, std::size_t, std::size_t>;
INSTANTIATE_TEST_SUITE_P(Shapes, PartitionGpuShapes,
                         ::testing::Values(MNP{1, 64, 8}, MNP{4, 100, 8},
                                           MNP{16, 257, 16}, MNP{8, 1000, 32},
                                           MNP{2, 33, 4}, MNP{3, 10, 64}));

TEST(PartitionGpu, ThreeLaunches) {
  const auto dev = gs::gtx480();
  auto batch = wl::make_batch<double>(wl::Kind::toeplitz, 8, 256,
                                      td::Layout::contiguous, 7);
  const auto rep = gp::partition_solve_gpu<double>(dev, batch, {});
  ASSERT_EQ(rep.timeline.segments().size(), 3u);
  EXPECT_EQ(rep.timeline.segments()[0].label, "packet-sweeps");
  EXPECT_EQ(rep.timeline.segments()[1].label, "reduced-solve");
  EXPECT_EQ(rep.timeline.segments()[2].label, "back-substitution");
  EXPECT_GT(rep.total_us(), 0.0);
}

TEST(PartitionGpu, RejectsBadPacketSizes) {
  const auto dev = gs::gtx480();
  auto batch = wl::make_batch<double>(wl::Kind::toeplitz, 2, 64,
                                      td::Layout::contiguous, 8);
  gp::PartitionGpuOptions opts;
  opts.packet = 1;
  EXPECT_THROW(gp::partition_solve_gpu<double>(dev, batch, opts),
               std::invalid_argument);
  opts.packet = 128;
  EXPECT_THROW(gp::partition_solve_gpu<double>(dev, batch, opts),
               std::invalid_argument);
}

TEST(PartitionGpu, NoSharedMemoryUse) {
  // The register-packed solver never touches shared memory: its occupancy
  // is never shared-limited (contrast with the in-shared baselines).
  const auto dev = gs::gtx480();
  auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 4, 512,
                                      td::Layout::contiguous, 9);
  const auto rep = gp::partition_solve_gpu<double>(dev, batch, {});
  for (const auto& seg : rep.timeline.segments()) {
    EXPECT_EQ(seg.stats.costs.shared_peak_bytes, 0u) << seg.label;
  }
}

TEST(PartitionGpu, FloatPath) {
  const auto dev = gs::gtx480();
  auto batch = wl::make_batch<float>(wl::Kind::adi_sweep, 4, 200,
                                     td::Layout::contiguous, 10);
  const auto orig = batch.clone();
  gp::partition_solve_gpu<float>(dev, batch, {});
  std::vector<float> x(200);
  for (std::size_t m = 0; m < 4; ++m) {
    auto check = orig.clone();
    auto sys = check.system(m);
    ASSERT_TRUE(
        td::lu_gtsv<float>(sys, td::StridedView<float>(x.data(), 200, 1)).ok());
    for (std::size_t i = 0; i < 200; ++i) {
      EXPECT_NEAR(batch.d()[batch.index(m, i)], x[i], 2e-3);
    }
  }
}
