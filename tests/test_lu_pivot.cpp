// Pivoting LU (gtsv-style) tests: agreement with Thomas on dominant
// systems, stability where Thomas fails, singularity detection.

#include <gtest/gtest.h>

#include "tridiag/lu_pivot.hpp"
#include "tridiag/residual.hpp"
#include "tridiag/thomas.hpp"
#include "util/aligned_buffer.hpp"
#include "util/stats.hpp"
#include "workloads/generators.hpp"

namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;
using tridsolve::util::AlignedBuffer;
using tridsolve::util::Xoshiro256;

TEST(LuGtsv, MatchesThomasOnDominantSystem) {
  Xoshiro256 rng(17);
  td::TridiagSystem<double> s(301);
  wl::fill_matrix(wl::Kind::random_dominant, s.ref(), rng);
  wl::fill_rhs_random(s.ref(), rng);

  auto copy = s.clone();
  AlignedBuffer<double> x_lu(301), x_th(301);
  ASSERT_TRUE(td::lu_gtsv(s.ref(), td::StridedView<double>(x_lu.span())).ok());
  ASSERT_TRUE(td::thomas_solve(copy.ref(), td::StridedView<double>(x_th.span())).ok());
  EXPECT_LT(tridsolve::util::max_abs_diff(x_lu.span(), x_th.span()), 1e-11);
}

TEST(LuGtsv, StableWherePivotingIsRequired) {
  Xoshiro256 rng(23);
  td::TridiagSystem<double> s(200);
  wl::fill_matrix(wl::Kind::needs_pivoting, s.ref(), rng);
  AlignedBuffer<double> x_true(200);
  tridsolve::util::fill_uniform(rng, x_true.span(), -1.0, 1.0);
  wl::fill_rhs_for_solution(s.ref(),
                            td::StridedView<const double>(x_true.data(), 200, 1));
  AlignedBuffer<double> x(200);
  ASSERT_TRUE(td::lu_gtsv(s.ref(), td::StridedView<double>(x.span())).ok());
  EXPECT_LT(tridsolve::util::max_abs_diff(x.span(), x_true.span()), 1e-8);
}

TEST(LuGtsv, ExactZeroDiagonalNeedsInterchange) {
  // b[0] = 0 kills Thomas instantly; pivoting handles it.
  td::TridiagSystem<double> s(3);
  s.a()[0] = 0; s.a()[1] = 1; s.a()[2] = 2;
  s.b()[0] = 0; s.b()[1] = 1; s.b()[2] = 1;
  s.c()[0] = 1; s.c()[1] = 1; s.c()[2] = 0;
  // x_true = (1, 2, 3): d = (2, 6, 7)
  s.d()[0] = 2; s.d()[1] = 6; s.d()[2] = 7;
  AlignedBuffer<double> x(3);
  ASSERT_TRUE(td::lu_gtsv(s.ref(), td::StridedView<double>(x.span())).ok());
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(LuGtsv, DetectsSingularMatrix) {
  td::TridiagSystem<double> s(2);
  // Rows are (1,1) and (1,1): rank 1.
  s.b()[0] = 1; s.c()[0] = 1;
  s.a()[1] = 1; s.b()[1] = 1;
  s.d()[0] = 1; s.d()[1] = 2;
  AlignedBuffer<double> x(2);
  const auto st = td::lu_gtsv(s.ref(), td::StridedView<double>(x.span()));
  EXPECT_EQ(st.code, td::SolveCode::singular);
}

TEST(LuGtsv, DetectsAllZeroMatrix) {
  td::TridiagSystem<double> s(3);  // zero-initialized
  AlignedBuffer<double> x(3);
  const auto st = td::lu_gtsv(s.ref(), td::StridedView<double>(x.span()));
  EXPECT_EQ(st.code, td::SolveCode::singular);
}

TEST(LuGtsv, SizeOne) {
  td::TridiagSystem<double> s(1);
  s.b()[0] = -2;
  s.d()[0] = 5;
  AlignedBuffer<double> x(1);
  ASSERT_TRUE(td::lu_gtsv(s.ref(), td::StridedView<double>(x.span())).ok());
  EXPECT_DOUBLE_EQ(x[0], -2.5);
}

TEST(LuGtsv, SizeTwoWithInterchange) {
  td::TridiagSystem<double> s(2);
  s.b()[0] = 0.001; s.c()[0] = 1;
  s.a()[1] = 1;     s.b()[1] = 0.001;
  // x_true = (1, 1): d = (1.001, 1.001)
  s.d()[0] = 1.001; s.d()[1] = 1.001;
  AlignedBuffer<double> x(2);
  ASSERT_TRUE(td::lu_gtsv(s.ref(), td::StridedView<double>(x.span())).ok());
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(LuGtsv, ResidualTinyOnLongRandomSystems) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    Xoshiro256 rng(seed);
    const std::size_t n = 1000 + 17 * seed;
    td::TridiagSystem<double> s(n);
    wl::fill_matrix(wl::Kind::random_dominant, s.ref(), rng);
    wl::fill_rhs_random(s.ref(), rng);
    AlignedBuffer<double> x(n);
    ASSERT_TRUE(td::lu_gtsv(s.ref(), td::StridedView<double>(x.span())).ok());
    EXPECT_LT(td::relative_residual(td::as_const(s.ref()),
                                    td::StridedView<const double>(x.data(), n, 1)),
              1e-14);
  }
}

TEST(LuGtsv, NonDestructiveOnInput) {
  Xoshiro256 rng(5);
  td::TridiagSystem<double> s(50);
  wl::fill_matrix(wl::Kind::random_dominant, s.ref(), rng);
  wl::fill_rhs_random(s.ref(), rng);
  const auto before = s.clone();
  AlignedBuffer<double> x(50);
  ASSERT_TRUE(td::lu_gtsv(s.ref(), td::StridedView<double>(x.span())).ok());
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(s.a()[i], before.a()[i]);
    EXPECT_EQ(s.b()[i], before.b()[i]);
    EXPECT_EQ(s.c()[i], before.c()[i]);
    EXPECT_EQ(s.d()[i], before.d()[i]);
  }
}
