// Workload generator tests: structural invariants and determinism.

#include <gtest/gtest.h>

#include <cmath>

#include "tridiag/layout.hpp"
#include "workloads/generators.hpp"

namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;
using tridsolve::util::Xoshiro256;

TEST(Workloads, BoundaryCoefficientsAreZero) {
  for (auto kind : {wl::Kind::random_dominant, wl::Kind::toeplitz,
                    wl::Kind::poisson1d, wl::Kind::adi_sweep, wl::Kind::spline,
                    wl::Kind::needs_pivoting}) {
    Xoshiro256 rng(1);
    td::TridiagSystem<double> s(33);
    wl::fill_matrix(kind, s.ref(), rng);
    EXPECT_EQ(s.a()[0], 0.0) << wl::kind_name(kind);
    EXPECT_EQ(s.c()[32], 0.0) << wl::kind_name(kind);
  }
}

TEST(Workloads, RandomDominantIsStrictlyDominant) {
  Xoshiro256 rng(5);
  td::TridiagSystem<double> s(500);
  wl::fill_matrix(wl::Kind::random_dominant, s.ref(), rng);
  for (std::size_t i = 0; i < 500; ++i) {
    EXPECT_GT(std::abs(s.b()[i]),
              std::abs(s.a()[i]) + std::abs(s.c()[i]) + 0.2)
        << i;
  }
}

TEST(Workloads, SplineRowsAreDominant) {
  Xoshiro256 rng(6);
  td::TridiagSystem<double> s(100);
  wl::fill_matrix(wl::Kind::spline, s.ref(), rng);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_GT(s.b()[i], std::abs(s.a()[i]) + std::abs(s.c()[i]));
  }
}

TEST(Workloads, NeedsPivotingHasWeakDiagonals) {
  Xoshiro256 rng(7);
  td::TridiagSystem<double> s(64);
  wl::fill_matrix(wl::Kind::needs_pivoting, s.ref(), rng);
  bool any_weak = false;
  for (std::size_t i = 0; i < 64; ++i) {
    if (std::abs(s.b()[i]) < 0.01) any_weak = true;
  }
  EXPECT_TRUE(any_weak);
}

TEST(Workloads, RhsForSolutionRoundTrips) {
  Xoshiro256 rng(8);
  td::TridiagSystem<double> s(50);
  wl::fill_matrix(wl::Kind::random_dominant, s.ref(), rng);
  std::vector<double> xt(50);
  for (std::size_t i = 0; i < 50; ++i) xt[i] = static_cast<double>(i) - 25.0;
  wl::fill_rhs_for_solution(s.ref(),
                            td::StridedView<const double>(xt.data(), 50, 1));
  // Row 0 and row n-1 must not reference out-of-range x.
  EXPECT_DOUBLE_EQ(s.d()[0], s.b()[0] * xt[0] + s.c()[0] * xt[1]);
  EXPECT_DOUBLE_EQ(s.d()[49], s.a()[49] * xt[48] + s.b()[49] * xt[49]);
}

TEST(Workloads, BatchDeterministicInSeed) {
  const auto b1 = wl::make_batch<double>(wl::Kind::random_dominant, 4, 32,
                                         td::Layout::contiguous, 99);
  const auto b2 = wl::make_batch<double>(wl::Kind::random_dominant, 4, 32,
                                         td::Layout::contiguous, 99);
  for (std::size_t i = 0; i < b1.total_rows(); ++i) {
    EXPECT_EQ(b1.b()[i], b2.b()[i]);
    EXPECT_EQ(b1.d()[i], b2.d()[i]);
  }
}

TEST(Workloads, BatchSeedIndependentOfLayout) {
  // Same seed must produce the same logical systems in either layout.
  const auto cont = wl::make_batch<double>(wl::Kind::random_dominant, 3, 16,
                                           td::Layout::contiguous, 5);
  const auto inter = wl::make_batch<double>(wl::Kind::random_dominant, 3, 16,
                                            td::Layout::interleaved, 5);
  for (std::size_t m = 0; m < 3; ++m) {
    for (std::size_t i = 0; i < 16; ++i) {
      EXPECT_EQ(cont.b()[cont.index(m, i)], inter.b()[inter.index(m, i)]);
      EXPECT_EQ(cont.d()[cont.index(m, i)], inter.d()[inter.index(m, i)]);
    }
  }
}

TEST(Workloads, DifferentSystemsInBatchDiffer) {
  const auto b = wl::make_batch<double>(wl::Kind::random_dominant, 2, 16,
                                        td::Layout::contiguous, 3);
  bool differ = false;
  for (std::size_t i = 0; i < 16 && !differ; ++i) {
    differ = b.b()[b.index(0, i)] != b.b()[b.index(1, i)];
  }
  EXPECT_TRUE(differ);
}

TEST(Workloads, KindNamesAreDistinct) {
  EXPECT_STRNE(wl::kind_name(wl::Kind::toeplitz), wl::kind_name(wl::Kind::spline));
  EXPECT_STRNE(wl::kind_name(wl::Kind::poisson1d),
               wl::kind_name(wl::Kind::adi_sweep));
}
