// GPU simulator tests: shared arena, occupancy, coalescing-transaction
// accounting, timing-model regimes, and launch validation.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "gpusim/device_spec.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/occupancy.hpp"
#include "gpusim/shared_memory.hpp"
#include "gpusim/timing_model.hpp"
#include "util/aligned_buffer.hpp"

namespace gs = tridsolve::gpusim;
using tridsolve::util::AlignedBuffer;

TEST(SharedArena, AllocatesAndTracksPeak) {
  gs::SharedArena arena(1024);
  auto* a = arena.allocate<double>(16);  // 128 bytes
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(arena.used(), 128u);
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.peak(), 128u);
  (void)arena.allocate<double>(64);  // 512 bytes
  EXPECT_EQ(arena.peak(), 512u);
}

TEST(SharedArena, ThrowsWhenExhausted) {
  gs::SharedArena arena(64);
  EXPECT_THROW((void)arena.allocate<double>(9), std::length_error);
}

TEST(SharedArena, AlignsAllocations) {
  gs::SharedArena arena(256);
  (void)arena.allocate<char>(3);
  auto* d = arena.allocate<double>(1);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
}

TEST(Occupancy, ThreadLimited) {
  const auto dev = gs::gtx480();
  // 512-thread blocks, no shared: 1536/512 = 3 blocks -> 48 warps.
  const auto occ = gs::compute_occupancy(dev, 512, 0);
  EXPECT_EQ(occ.blocks_per_sm, 3);
  EXPECT_EQ(occ.resident_warps_per_sm, 48);
  EXPECT_DOUBLE_EQ(occ.fraction, 1.0);
}

TEST(Occupancy, BlockCountLimited) {
  const auto dev = gs::gtx480();
  // Tiny blocks: capped by max_blocks_per_sm = 8.
  const auto occ = gs::compute_occupancy(dev, 32, 0);
  EXPECT_EQ(occ.blocks_per_sm, 8);
  EXPECT_EQ(occ.limiter, "blocks");
  EXPECT_EQ(occ.resident_warps_per_sm, 8);
}

TEST(Occupancy, SharedMemoryLimited) {
  const auto dev = gs::gtx480();
  // 20 KB per block: only 2 fit in 48 KB.
  const auto occ = gs::compute_occupancy(dev, 128, 20 * 1024);
  EXPECT_EQ(occ.blocks_per_sm, 2);
  EXPECT_EQ(occ.limiter, "shared");
}

TEST(Occupancy, UnlaunchableConfigs) {
  const auto dev = gs::gtx480();
  EXPECT_FALSE(gs::compute_occupancy(dev, 2048, 0).launchable());   // threads
  EXPECT_FALSE(gs::compute_occupancy(dev, 128, 49 * 1024).launchable());  // shared
  EXPECT_FALSE(gs::compute_occupancy(dev, 0, 0).launchable());
}

TEST(Launch, RejectsOversizedBlock) {
  const auto dev = gs::gtx480();
  EXPECT_THROW(
      gs::launch(dev, {1, 2048}, [](gs::BlockContext&) {}),
      std::invalid_argument);
}

TEST(Launch, CoalescedAccessesShareTransactions) {
  const auto dev = gs::gtx480();
  AlignedBuffer<double> data(1024, 1.0);
  // One warp (32 threads) loading 32 consecutive doubles = 256 bytes
  // = exactly 2 x 128-byte transactions.
  const auto stats = gs::launch(dev, {1, 32}, [&](gs::BlockContext& ctx) {
    ctx.phase([&](gs::ThreadCtx& t) {
      (void)t.load(&data[static_cast<std::size_t>(t.tid())]);
    });
  });
  EXPECT_EQ(stats.costs.transactions, 2u);
  EXPECT_EQ(stats.costs.loads, 32u);
  EXPECT_EQ(stats.costs.bytes_requested, 32u * 8u);
  EXPECT_DOUBLE_EQ(stats.costs.coalescing_efficiency(dev.transaction_bytes), 1.0);
}

TEST(Launch, StridedAccessesExplodeTransactions) {
  const auto dev = gs::gtx480();
  AlignedBuffer<double> data(32 * 64, 1.0);
  // Stride-64 doubles: every thread touches its own 128-byte segment.
  const auto stats = gs::launch(dev, {1, 32}, [&](gs::BlockContext& ctx) {
    ctx.phase([&](gs::ThreadCtx& t) {
      (void)t.load(&data[static_cast<std::size_t>(t.tid()) * 64]);
    });
  });
  EXPECT_EQ(stats.costs.transactions, 32u);
  EXPECT_LT(stats.costs.coalescing_efficiency(dev.transaction_bytes), 0.07);
}

TEST(Launch, RoundsSeparateTransactions) {
  const auto dev = gs::gtx480();
  AlignedBuffer<double> data(64, 1.0);
  // Same segment touched in two different rounds: cannot merge (the two
  // loads are on a serial dependence chain), so 2 transactions + 2 rounds.
  const auto stats = gs::launch(dev, {1, 1}, [&](gs::BlockContext& ctx) {
    ctx.phase([&](gs::ThreadCtx& t) {
      (void)t.load(&data[0]);
      t.end_round();
      (void)t.load(&data[1]);
      t.end_round();
    });
  });
  EXPECT_EQ(stats.costs.transactions, 2u);
  EXPECT_EQ(stats.costs.rounds_total, 2u);
}

TEST(Launch, WarpsAndBarriersCounted) {
  const auto dev = gs::gtx480();
  const auto stats = gs::launch(dev, {4, 96}, [&](gs::BlockContext& ctx) {
    ctx.phase([](gs::ThreadCtx&) {});
    ctx.phase([](gs::ThreadCtx&) {});
  });
  EXPECT_EQ(stats.costs.warps, 4u * 3u);
  EXPECT_EQ(stats.costs.barriers, 8u);  // 2 phases x 4 blocks
}

TEST(Launch, SharedPeakFeedsOccupancy) {
  const auto dev = gs::gtx480();
  const auto stats = gs::launch(dev, {1, 64}, [&](gs::BlockContext& ctx) {
    (void)ctx.shared<double>(20 * 1024 / 8);  // 20 KB
    ctx.phase([](gs::ThreadCtx&) {});
  });
  EXPECT_EQ(stats.costs.shared_peak_bytes, 20u * 1024u);
  EXPECT_EQ(stats.timing.occupancy.blocks_per_sm, 2);
}

TEST(Launch, BlockIdsCoverGrid) {
  const auto dev = gs::gtx480();
  std::vector<int> seen(10, 0);
  gs::launch(dev, {10, 1}, [&](gs::BlockContext& ctx) {
    seen[ctx.block_id()]++;
    EXPECT_EQ(ctx.grid_blocks(), 10u);
  });
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(Launch, FlopChargingByPrecision) {
  const auto dev = gs::gtx480();
  const auto stats = gs::launch(dev, {1, 2}, [&](gs::BlockContext& ctx) {
    ctx.phase([](gs::ThreadCtx& t) {
      t.flops<float>(3);
      t.flops<double>(5);
      t.divs<double>(1);  // 8 op-equivalents on GTX480
    });
  });
  EXPECT_DOUBLE_EQ(stats.costs.ops_f32, 6.0);
  EXPECT_DOUBLE_EQ(stats.costs.ops_f64, 2 * (5.0 + 8.0));
}

// --- Timing model regimes -------------------------------------------------

namespace {

/// Costs mimicking a p-Thomas-like kernel: each warp runs `rounds`
/// serialized memory rounds, each round moving `tx_per_round` transactions.
gs::KernelCosts synthetic_costs(std::size_t warps, std::size_t rounds,
                                std::size_t tx_per_round) {
  gs::KernelCosts c;
  c.warps = warps;
  c.rounds_total = warps * rounds;
  c.transactions = warps * rounds * tx_per_round;
  c.ops_f64 = static_cast<double>(warps * rounds) * 32.0;
  return c;
}

}  // namespace

TEST(TimingModel, LatencyFloorIsFlatInParallelism) {
  // Single-wave launches: doubling the number of warps (all resident)
  // must not change the latency-bound time — the flat region of Fig. 12.
  const auto dev = gs::gtx480();
  const auto t1 = gs::predict_kernel_time(dev, 15, 64, synthetic_costs(30, 512, 1));
  const auto t2 = gs::predict_kernel_time(dev, 30, 64, synthetic_costs(60, 512, 1));
  ASSERT_EQ(t1.bound(), std::string("latency"));
  EXPECT_NEAR(t1.time_us, t2.time_us, t1.time_us * 0.05);
}

TEST(TimingModel, BandwidthBoundGrowsLinearly) {
  // Saturated launches: time tracks total transactions.
  const auto dev = gs::gtx480();
  const auto small = synthetic_costs(15 * 48 * 4, 512, 4);
  const auto large = synthetic_costs(15 * 48 * 8, 512, 4);
  const auto t_small = gs::predict_kernel_time(dev, 15 * 48 * 4 / 2, 64, small);
  const auto t_large = gs::predict_kernel_time(dev, 15 * 48 * 8 / 2, 64, large);
  EXPECT_NEAR(t_large.time_us / t_small.time_us, 2.0, 0.2);
}

TEST(TimingModel, MoreResidentWarpsHideLatency) {
  // Same total work, but one config is occupancy-throttled by shared
  // memory: it must be slower (the paper's §V argument vs coarse tiling).
  const auto dev = gs::gtx480();
  auto costs_hi = synthetic_costs(15 * 8, 512, 1);
  auto costs_lo = costs_hi;
  costs_lo.shared_peak_bytes = 24 * 1024;  // 2 blocks/SM instead of 8
  costs_hi.shared_peak_bytes = 4 * 1024;
  const auto t_hi = gs::predict_kernel_time(dev, 15 * 8, 64, costs_hi);
  const auto t_lo = gs::predict_kernel_time(dev, 15 * 8, 64, costs_lo);
  // 2 blocks/SM = 4 resident warps vs 16: 4x slower.
  EXPECT_GT(t_lo.time_us, t_hi.time_us * 1.4);
}

TEST(TimingModel, EmptyLaunchCostsOverheadOnly) {
  const auto dev = gs::gtx480();
  gs::KernelCosts none;
  const auto t = gs::predict_kernel_time(dev, 0, 32, none);
  EXPECT_DOUBLE_EQ(t.time_us, dev.kernel_launch_overhead_us);
}

TEST(TimingModel, Fp64ComputeCostsEightTimesFp32) {
  const auto dev = gs::gtx480();
  gs::KernelCosts f32, f64;
  f32.warps = f64.warps = 15 * 48;
  f32.ops_f32 = 1e9;
  f64.ops_f64 = 1e9;
  const auto t32 = gs::predict_kernel_time(dev, 15 * 48, 32, f32);
  const auto t64 = gs::predict_kernel_time(dev, 15 * 48, 32, f64);
  EXPECT_NEAR((t64.compute_us) / (t32.compute_us), 8.0, 0.01);
}

TEST(Timeline, AccumulatesAndBreaksDown) {
  gs::Timeline tl;
  gs::LaunchStats s;
  s.timing.time_us = 10.0;
  tl.add("pcr:step0", s);
  s.timing.time_us = 30.0;
  tl.add("thomas", s);
  tl.add_fixed("pcr:extra", 5.0);
  EXPECT_DOUBLE_EQ(tl.total_us(), 45.0);
  EXPECT_DOUBLE_EQ(tl.time_with_prefix("pcr"), 15.0);
  EXPECT_DOUBLE_EQ(tl.time_with_prefix("thomas"), 30.0);
  EXPECT_EQ(tl.segments().size(), 3u);
}

TEST(DeviceSpec, PresetSanity) {
  const auto dev = gs::gtx480();
  EXPECT_NEAR(dev.peak_gflops(false), 672.0, 1.0);  // issue-rate based (no FMA x2)
  EXPECT_NEAR(dev.peak_gflops(true), 84.0, 0.2);
  EXPECT_GT(gs::gtx280().num_sms, 0);
  EXPECT_GT(gs::test_device().num_sms, 0);
}
