// Property-based suites over randomized shapes and workload kinds,
// double and single precision:
//  * every solver family agrees with the pivoting-LU referee,
//  * PCR reduction preserves diagonal dominance (the invariant that
//    makes the pivot-free pipeline safe on dominant systems),
//  * solutions are layout-invariant,
//  * strict reduction decoupling: after k steps, perturbing rows of one
//    residue class never changes another class's solve.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gpu_solvers/hybrid_solver.hpp"
#include "gpusim/device_spec.hpp"
#include "tridiag/cyclic_reduction.hpp"
#include "tridiag/lu_pivot.hpp"
#include "tridiag/pcr.hpp"
#include "tridiag/partition.hpp"
#include "tridiag/recursive_doubling.hpp"
#include "tridiag/thomas.hpp"
#include "util/random.hpp"
#include "workloads/generators.hpp"

namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;
namespace gp = tridsolve::gpu;
using tridsolve::util::Xoshiro256;

namespace {

struct Shape {
  std::size_t m, n;
  wl::Kind kind;
  std::uint64_t seed;
};

std::vector<Shape> random_shapes(std::size_t count, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const wl::Kind kinds[] = {wl::Kind::random_dominant, wl::Kind::toeplitz,
                            wl::Kind::poisson1d, wl::Kind::adi_sweep,
                            wl::Kind::spline};
  std::vector<Shape> shapes;
  for (std::size_t i = 0; i < count; ++i) {
    shapes.push_back(Shape{
        static_cast<std::size_t>(tridsolve::util::uniform_int(rng, 1, 64)),
        static_cast<std::size_t>(tridsolve::util::uniform_int(rng, 3, 700)),
        kinds[rng() % std::size(kinds)], rng()});
  }
  return shapes;
}

}  // namespace

// ---- Hybrid vs referee over random shapes ---------------------------------

class HybridProperty : public ::testing::TestWithParam<int> {};

TEST_P(HybridProperty, AgreesWithRefereeOnRandomShape) {
  const auto shapes = random_shapes(40, 777);
  const Shape s = shapes[static_cast<std::size_t>(GetParam())];
  const auto dev = tridsolve::gpusim::gtx480();

  auto batch =
      wl::make_batch<double>(s.kind, s.m, s.n, td::Layout::contiguous, s.seed);
  const auto orig = batch.clone();
  gp::hybrid_solve(dev, batch);

  auto check = orig.clone();
  std::vector<double> x(s.n);
  for (std::size_t m = 0; m < s.m; ++m) {
    auto sys = check.system(m);
    ASSERT_TRUE(
        td::lu_gtsv<double>(sys, td::StridedView<double>(x.data(), s.n, 1)).ok());
    for (std::size_t i = 0; i < s.n; ++i) {
      const double scale = std::max(1.0, std::abs(x[i]));
      ASSERT_NEAR(batch.d()[batch.index(m, i)] / scale, x[i] / scale, 1e-7)
          << "shape M=" << s.m << " N=" << s.n << " kind="
          << wl::kind_name(s.kind) << " m=" << m << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, HybridProperty, ::testing::Range(0, 40));

// ---- Host solver cross-agreement over random shapes ------------------------

class HostSolverProperty : public ::testing::TestWithParam<int> {};

TEST_P(HostSolverProperty, AllHostSolversAgree) {
  const auto shapes = random_shapes(25, 4242);
  const Shape s = shapes[static_cast<std::size_t>(GetParam())];
  Xoshiro256 rng(s.seed);
  td::TridiagSystem<double> sys(s.n);
  wl::fill_matrix(s.kind, sys.ref(), rng);
  wl::fill_rhs_random(sys.ref(), rng);

  std::vector<double> x_lu(s.n), x_th(s.n), x_cr(s.n), x_rd(s.n), x_pcr(s.n),
      x_part(s.n);
  ASSERT_TRUE(
      td::lu_gtsv(sys.ref(), td::StridedView<double>(x_lu.data(), s.n, 1)).ok());
  {
    auto c = sys.clone();
    ASSERT_TRUE(
        td::thomas_solve(c.ref(), td::StridedView<double>(x_th.data(), s.n, 1)).ok());
  }
  ASSERT_TRUE(
      td::cr_solve(sys.ref(), td::StridedView<double>(x_cr.data(), s.n, 1)).ok());
  ASSERT_TRUE(
      td::rd_solve(sys.ref(), td::StridedView<double>(x_rd.data(), s.n, 1)).ok());
  {
    auto c = sys.clone();
    ASSERT_TRUE(
        td::pcr_solve(c.ref(), td::StridedView<double>(x_pcr.data(), s.n, 1)).ok());
  }
  if (s.n >= 2) {
    ASSERT_TRUE(td::partition_solve(
                    sys.ref(), td::StridedView<double>(x_part.data(), s.n, 1), 8)
                    .ok());
  } else {
    x_part = x_lu;
  }
  for (std::size_t i = 0; i < s.n; ++i) {
    const double scale = std::max(1.0, std::abs(x_lu[i]));
    EXPECT_NEAR(x_th[i] / scale, x_lu[i] / scale, 1e-8) << i;
    EXPECT_NEAR(x_cr[i] / scale, x_lu[i] / scale, 1e-7) << i;
    EXPECT_NEAR(x_rd[i] / scale, x_lu[i] / scale, 1e-6) << i;
    EXPECT_NEAR(x_pcr[i] / scale, x_lu[i] / scale, 1e-7) << i;
    EXPECT_NEAR(x_part[i] / scale, x_lu[i] / scale, 1e-7) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, HostSolverProperty,
                         ::testing::Range(0, 25));

// ---- Structural invariants --------------------------------------------------

TEST(PcrInvariants, PreservesDiagonalDominance) {
  // If |b| >= |a| + |c| + margin holds, it keeps holding at every PCR
  // level (with a possibly smaller margin) — the reason Thomas needs no
  // pivoting after the reduction.
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    td::TridiagSystem<double> sys(257);
    wl::fill_matrix(wl::Kind::random_dominant, sys.ref(), rng);
    wl::fill_rhs_random(sys.ref(), rng);
    for (unsigned k = 1; k <= 6; ++k) {
      auto c = sys.clone();
      td::pcr_reduce(c.ref(), k);
      for (std::size_t i = 0; i < c.size(); ++i) {
        EXPECT_GE(std::abs(c.b()[i]),
                  std::abs(c.a()[i]) + std::abs(c.c()[i]))
            << "k=" << k << " i=" << i;
      }
    }
  }
}

TEST(PcrInvariants, ReducedClassesAreIndependent) {
  // After k steps, rows i ≡ r (mod 2^k) form closed systems: changing the
  // rhs of one class must not change another class's solution.
  const unsigned k = 3;
  const std::size_t n = 128;
  Xoshiro256 rng(21);
  td::TridiagSystem<double> base(n);
  wl::fill_matrix(wl::Kind::random_dominant, base.ref(), rng);
  wl::fill_rhs_random(base.ref(), rng);

  auto reduced = base.clone();
  td::pcr_reduce(reduced.ref(), k);

  auto solve_class = [&](const td::TridiagSystem<double>& sys, std::size_t r) {
    const std::size_t stride = std::size_t{1} << k;
    const std::size_t count = (n - r + stride - 1) / stride;
    std::vector<double> x(count);
    auto copy = sys.clone();
    auto ref = copy.ref();
    td::SystemRef<double> cls{
        td::StridedView<double>(ref.a.ptr(r), count, static_cast<std::ptrdiff_t>(stride)),
        td::StridedView<double>(ref.b.ptr(r), count, static_cast<std::ptrdiff_t>(stride)),
        td::StridedView<double>(ref.c.ptr(r), count, static_cast<std::ptrdiff_t>(stride)),
        td::StridedView<double>(ref.d.ptr(r), count, static_cast<std::ptrdiff_t>(stride))};
    EXPECT_TRUE(
        td::thomas_solve(cls, td::StridedView<double>(x.data(), count, 1)).ok());
    return x;
  };
  const auto x2_before = solve_class(reduced, 2);

  // Perturb reduced class r=5's rhs only.
  auto perturbed = reduced.clone();
  for (std::size_t i = 5; i < n; i += (std::size_t{1} << k)) {
    perturbed.d()[i] += 10.0;
  }
  const auto x2_after = solve_class(perturbed, 2);
  for (std::size_t i = 0; i < x2_before.size(); ++i) {
    EXPECT_EQ(x2_before[i], x2_after[i]) << i;
  }
}

TEST(LayoutInvariance, HybridSolutionIndependentOfLayout) {
  const auto dev = tridsolve::gpusim::gtx480();
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    auto cont = wl::make_batch<double>(wl::Kind::random_dominant, 48, 300,
                                       td::Layout::contiguous, seed);
    auto inter = td::convert_layout(cont, td::Layout::interleaved);
    gp::HybridOptions opts;
    opts.force_k = 4;
    gp::hybrid_solve(dev, cont, opts);
    gp::hybrid_solve(dev, inter, opts);
    for (std::size_t m = 0; m < 48; ++m) {
      for (std::size_t i = 0; i < 300; ++i) {
        EXPECT_EQ(cont.d()[cont.index(m, i)], inter.d()[inter.index(m, i)])
            << "seed=" << seed << " m=" << m << " i=" << i;
      }
    }
  }
}

TEST(FloatDoubleConsistency, HybridFloatTracksDouble) {
  const auto dev = tridsolve::gpusim::gtx480();
  auto d64 = wl::make_batch<double>(wl::Kind::toeplitz, 16, 256,
                                    td::Layout::contiguous, 5);
  tridsolve::tridiag::SystemBatch<float> d32(16, 256, td::Layout::contiguous);
  for (std::size_t i = 0; i < d64.total_rows(); ++i) {
    d32.a()[i] = static_cast<float>(d64.a()[i]);
    d32.b()[i] = static_cast<float>(d64.b()[i]);
    d32.c()[i] = static_cast<float>(d64.c()[i]);
    d32.d()[i] = static_cast<float>(d64.d()[i]);
  }
  gp::hybrid_solve(dev, d64);
  gp::hybrid_solve(dev, d32);
  for (std::size_t i = 0; i < d64.total_rows(); ++i) {
    EXPECT_NEAR(static_cast<double>(d32.d()[i]), d64.d()[i], 5e-4) << i;
  }
}
