// Tests for batched system storage and the contiguous/interleaved layouts.

#include <gtest/gtest.h>

#include "tridiag/layout.hpp"
#include "workloads/generators.hpp"

namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;

TEST(Layout, ContiguousIndexing) {
  td::SystemBatch<double> batch(3, 4, td::Layout::contiguous);
  EXPECT_EQ(batch.index(0, 0), 0u);
  EXPECT_EQ(batch.index(1, 0), 4u);
  EXPECT_EQ(batch.index(2, 3), 11u);
}

TEST(Layout, InterleavedIndexing) {
  td::SystemBatch<double> batch(3, 4, td::Layout::interleaved);
  EXPECT_EQ(batch.index(0, 0), 0u);
  EXPECT_EQ(batch.index(1, 0), 1u);
  EXPECT_EQ(batch.index(0, 1), 3u);
  EXPECT_EQ(batch.index(2, 3), 11u);
}

TEST(Layout, SystemViewStrides) {
  td::SystemBatch<double> cont(4, 8, td::Layout::contiguous);
  EXPECT_EQ(cont.system(2).b.stride(), 1);
  td::SystemBatch<double> inter(4, 8, td::Layout::interleaved);
  EXPECT_EQ(inter.system(2).b.stride(), 4);
}

TEST(Layout, SystemViewWritesLandInFlatArray) {
  td::SystemBatch<double> batch(2, 3, td::Layout::interleaved);
  auto sys = batch.system(1);
  sys.b[2] = 9.0;
  EXPECT_DOUBLE_EQ(batch.b()[2 * 2 + 1], 9.0);
}

TEST(Layout, ConvertRoundTripPreservesEverything) {
  const auto orig = wl::make_batch<double>(wl::Kind::random_dominant, 5, 17,
                                           td::Layout::contiguous, 42);
  const auto inter = td::convert_layout(orig, td::Layout::interleaved);
  const auto back = td::convert_layout(inter, td::Layout::contiguous);
  for (std::size_t i = 0; i < orig.total_rows(); ++i) {
    EXPECT_EQ(orig.a()[i], back.a()[i]);
    EXPECT_EQ(orig.b()[i], back.b()[i]);
    EXPECT_EQ(orig.c()[i], back.c()[i]);
    EXPECT_EQ(orig.d()[i], back.d()[i]);
  }
}

TEST(Layout, ConvertMovesElementsToExpectedSlots) {
  td::SystemBatch<double> cont(2, 2, td::Layout::contiguous);
  // system 0: b = {1, 2}; system 1: b = {3, 4}
  cont.b()[0] = 1;
  cont.b()[1] = 2;
  cont.b()[2] = 3;
  cont.b()[3] = 4;
  const auto inter = td::convert_layout(cont, td::Layout::interleaved);
  EXPECT_DOUBLE_EQ(inter.b()[0], 1);  // (m=0, i=0)
  EXPECT_DOUBLE_EQ(inter.b()[1], 3);  // (m=1, i=0)
  EXPECT_DOUBLE_EQ(inter.b()[2], 2);  // (m=0, i=1)
  EXPECT_DOUBLE_EQ(inter.b()[3], 4);  // (m=1, i=1)
}

TEST(Layout, CloneIsDeep) {
  auto batch = wl::make_batch<float>(wl::Kind::toeplitz, 2, 4,
                                     td::Layout::contiguous, 1);
  auto copy = batch.clone();
  copy.b()[0] = -99.0f;
  EXPECT_NE(batch.b()[0], copy.b()[0]);
}

TEST(StridedView, SubviewAndPtr) {
  double data[10] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  td::StridedView<double> v(data, 5, 2);  // 0,2,4,6,8
  EXPECT_DOUBLE_EQ(v[2], 4.0);
  EXPECT_EQ(v.ptr(3), data + 6);
  auto sub = v.subview(1, 3);  // 2,4,6
  EXPECT_DOUBLE_EQ(sub[0], 2.0);
  EXPECT_DOUBLE_EQ(sub[2], 6.0);
}
