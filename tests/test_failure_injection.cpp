// Failure-injection and edge-case suite: bad launch configurations,
// shared-memory exhaustion, singular/NaN inputs, and degenerate shapes —
// every public entry point must fail loudly (status or exception), never
// hang or corrupt unrelated state.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "gpu_solvers/hybrid_solver.hpp"
#include "gpu_solvers/tiled_pcr_kernel.hpp"
#include "gpu_solvers/zhang_pcr_thomas.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/launch.hpp"
#include "tridiag/cyclic_reduction.hpp"
#include "tridiag/lu_pivot.hpp"
#include "tridiag/pcr.hpp"
#include "tridiag/recursive_doubling.hpp"
#include "tridiag/thomas.hpp"
#include "workloads/generators.hpp"

namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;
namespace gp = tridsolve::gpu;
namespace gs = tridsolve::gpusim;
using tridsolve::util::Xoshiro256;

TEST(FailureInjection, NanInputsPropagateNotHang) {
  Xoshiro256 rng(1);
  td::TridiagSystem<double> sys(64);
  wl::fill_matrix(wl::Kind::random_dominant, sys.ref(), rng);
  wl::fill_rhs_random(sys.ref(), rng);
  sys.d()[17] = std::numeric_limits<double>::quiet_NaN();

  std::vector<double> x(64);
  const auto st =
      td::thomas_solve(sys.ref(), td::StridedView<double>(x.data(), 64, 1));
  ASSERT_TRUE(st.ok());  // Thomas has no NaN check; values must carry it
  bool any_nan = false;
  for (double v : x) any_nan |= std::isnan(v);
  EXPECT_TRUE(any_nan);
}

TEST(FailureInjection, SingularSystemsReportedByEveryDirectSolver) {
  td::TridiagSystem<double> sys(4);  // all-zero matrix
  std::vector<double> x(4);
  EXPECT_EQ(td::thomas_solve(sys.ref(), td::StridedView<double>(x.data(), 4, 1)).code,
            td::SolveCode::zero_pivot);
  EXPECT_EQ(td::lu_gtsv(sys.ref(), td::StridedView<double>(x.data(), 4, 1)).code,
            td::SolveCode::singular);
  EXPECT_EQ(td::cr_solve(sys.ref(), td::StridedView<double>(x.data(), 4, 1)).code,
            td::SolveCode::zero_pivot);
  EXPECT_EQ(td::rd_solve(sys.ref(), td::StridedView<double>(x.data(), 4, 1)).code,
            td::SolveCode::zero_pivot);
  auto copy = sys.clone();
  EXPECT_EQ(td::pcr_solve(copy.ref(), td::StridedView<double>(x.data(), 4, 1)).code,
            td::SolveCode::zero_pivot);
}

TEST(FailureInjection, MismatchedSizesAreBadSize) {
  Xoshiro256 rng(2);
  td::TridiagSystem<double> sys(8);
  wl::fill_matrix(wl::Kind::random_dominant, sys.ref(), rng);
  std::vector<double> x(7);  // wrong
  EXPECT_EQ(td::thomas_solve(sys.ref(), td::StridedView<double>(x.data(), 7, 1)).code,
            td::SolveCode::bad_size);
  EXPECT_EQ(td::lu_gtsv(sys.ref(), td::StridedView<double>(x.data(), 7, 1)).code,
            td::SolveCode::bad_size);
  EXPECT_EQ(td::cr_solve(sys.ref(), td::StridedView<double>(x.data(), 7, 1)).code,
            td::SolveCode::bad_size);
  EXPECT_EQ(td::rd_solve(sys.ref(), td::StridedView<double>(x.data(), 7, 1)).code,
            td::SolveCode::bad_size);
}

TEST(FailureInjection, EmptyAndUnitBatches) {
  const auto dev = gs::gtx480();
  td::SystemBatch<double> empty(0, 0, td::Layout::contiguous);
  const auto rep = gp::hybrid_solve(dev, empty);
  EXPECT_DOUBLE_EQ(rep.total_us(), 0.0);

  auto unit = wl::make_batch<double>(wl::Kind::random_dominant, 1, 1,
                                     td::Layout::contiguous, 3);
  const double b = unit.b()[0], d = unit.d()[0];
  gp::hybrid_solve(dev, unit);
  EXPECT_NEAR(unit.d()[0], d / b, 1e-14);
}

TEST(FailureInjection, HybridWithOversizedForcedK) {
  // force_k = 8 on a 100-row system: 2^k exceeds the system size, so most
  // reduced classes do not exist — the solve must still be correct.
  const auto dev = gs::gtx480();
  auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 2, 100,
                                      td::Layout::contiguous, 4);
  const auto orig = batch.clone();
  gp::HybridOptions opts;
  opts.force_k = 8;
  gp::hybrid_solve(dev, batch, opts);

  auto check = orig.clone();
  std::vector<double> x(100);
  for (std::size_t m = 0; m < 2; ++m) {
    auto sys = check.system(m);
    ASSERT_TRUE(
        td::lu_gtsv<double>(sys, td::StridedView<double>(x.data(), 100, 1)).ok());
    for (std::size_t i = 0; i < 100; ++i) {
      EXPECT_NEAR(batch.d()[batch.index(m, i)], x[i], 1e-8);
    }
  }
}

TEST(FailureInjection, HybridRejectsImpossibleK) {
  const auto dev = gs::gtx480();
  auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 2, 64,
                                      td::Layout::contiguous, 5);
  gp::HybridOptions opts;
  opts.force_k = 11;  // 2048 threads > 1024/block
  EXPECT_THROW(gp::hybrid_solve(dev, batch, opts), std::invalid_argument);
  // k = 9 is launchable thread-wise but its window (~65 KB of rows)
  // exceeds the GTX480's 48 KB shared memory: rejected like a real launch.
  opts.force_k = 9;
  EXPECT_THROW(gp::hybrid_solve(dev, batch, opts), std::length_error);
}

TEST(FailureInjection, TiledPcrSharedOverflowThrows) {
  const auto dev = gs::gtx480();
  const std::size_t n = 8192;
  auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 1, n,
                                      td::Layout::contiguous, 6);
  std::vector<gp::TiledPcrWork<double>> work{
      {batch.system(0), batch.system(0), 0, n}};
  gp::TiledPcrConfig cfg;
  cfg.k = 8;
  cfg.c = 8;  // window of ~2 * 8 * 256 rows * 32 B >> 48 KB
  EXPECT_THROW(gp::tiled_pcr_kernel<double>(dev, work, cfg), std::length_error);
}

TEST(FailureInjection, MultiWindowSharedOverflowThrows) {
  const auto dev = gs::gtx480();
  const std::size_t n = 4096;
  auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 8, n,
                                      td::Layout::contiguous, 7);
  std::vector<gp::TiledPcrWork<double>> work;
  for (std::size_t m = 0; m < 8; ++m) {
    work.push_back({batch.system(m), batch.system(m), 0, n});
  }
  gp::TiledPcrConfig cfg;
  cfg.k = 8;                  // ~32 KB per window
  cfg.systems_per_block = 4;  // 4 windows > 48 KB
  EXPECT_THROW(gp::tiled_pcr_kernel<double>(dev, work, cfg), std::length_error);
}

TEST(FailureInjection, GtsvWorkspaceTooSmall) {
  Xoshiro256 rng(8);
  td::TridiagSystem<double> sys(16);
  wl::fill_matrix(wl::Kind::random_dominant, sys.ref(), rng);
  std::vector<double> x(16), small(8);
  td::GtsvWorkspace<double> ws{std::span<double>(small), std::span<double>(small),
                               std::span<double>(small), std::span<double>(small)};
  EXPECT_EQ(td::lu_gtsv(sys.ref(), td::StridedView<double>(x.data(), 16, 1), ws).code,
            td::SolveCode::bad_size);
}

TEST(FailureInjection, ZhangThrowsBeyondShared) {
  const auto dev = gs::gtx480();
  auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 1, 1537,
                                      td::Layout::contiguous, 9);
  EXPECT_THROW(gp::zhang_solve<double>(dev, batch), std::invalid_argument);
}

TEST(FailureInjection, LaunchRejectsZeroThreads) {
  const auto dev = gs::gtx480();
  EXPECT_THROW(gs::launch(dev, {1, 0}, [](gs::BlockContext&) {}),
               std::invalid_argument);
}

TEST(FailureInjection, WeakDominanceStillSolvesPoisson) {
  // Poisson rows are only weakly dominant (|b| == |a|+|c| in the
  // interior); the pivot-free pipeline must still be accurate.
  const auto dev = gs::gtx480();
  auto batch = wl::make_batch<double>(wl::Kind::poisson1d, 4, 1000,
                                      td::Layout::contiguous, 10);
  const auto orig = batch.clone();
  gp::hybrid_solve(dev, batch);
  auto check = orig.clone();
  std::vector<double> x(1000);
  for (std::size_t m = 0; m < 4; ++m) {
    auto sys = check.system(m);
    ASSERT_TRUE(
        td::lu_gtsv<double>(sys, td::StridedView<double>(x.data(), 1000, 1)).ok());
    for (std::size_t i = 0; i < 1000; ++i) {
      EXPECT_NEAR(batch.d()[batch.index(m, i)], x[i], 1e-6);
    }
  }
}
