// Failure-injection and edge-case suite: bad launch configurations,
// shared-memory exhaustion, singular/NaN inputs, and degenerate shapes —
// every public entry point must fail loudly (status or exception), never
// hang or corrupt unrelated state.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "gpu_solvers/hybrid_solver.hpp"
#include "gpu_solvers/pthomas_kernel.hpp"
#include "gpu_solvers/registry.hpp"
#include "gpu_solvers/tiled_pcr_kernel.hpp"
#include "gpu_solvers/zhang_pcr_thomas.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/launch.hpp"
#include "obs/metrics.hpp"
#include "tridiag/batch_status.hpp"
#include "tridiag/cyclic_reduction.hpp"
#include "tridiag/lu_pivot.hpp"
#include "tridiag/pcr.hpp"
#include "tridiag/recursive_doubling.hpp"
#include "tridiag/residual.hpp"
#include "tridiag/thomas.hpp"
#include "tridiag/tiled_pcr.hpp"
#include "workloads/generators.hpp"

namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;
namespace gp = tridsolve::gpu;
namespace gs = tridsolve::gpusim;
using tridsolve::util::Xoshiro256;

TEST(FailureInjection, NanInputsPropagateNotHang) {
  Xoshiro256 rng(1);
  td::TridiagSystem<double> sys(64);
  wl::fill_matrix(wl::Kind::random_dominant, sys.ref(), rng);
  wl::fill_rhs_random(sys.ref(), rng);
  sys.d()[17] = std::numeric_limits<double>::quiet_NaN();

  std::vector<double> x(64);
  const auto st =
      td::thomas_solve(sys.ref(), td::StridedView<double>(x.data(), 64, 1));
  ASSERT_TRUE(st.ok());  // Thomas has no NaN check; values must carry it
  bool any_nan = false;
  for (double v : x) any_nan |= std::isnan(v);
  EXPECT_TRUE(any_nan);
}

TEST(FailureInjection, SingularSystemsReportedByEveryDirectSolver) {
  td::TridiagSystem<double> sys(4);  // all-zero matrix
  std::vector<double> x(4);
  EXPECT_EQ(td::thomas_solve(sys.ref(), td::StridedView<double>(x.data(), 4, 1)).code,
            td::SolveCode::zero_pivot);
  EXPECT_EQ(td::lu_gtsv(sys.ref(), td::StridedView<double>(x.data(), 4, 1)).code,
            td::SolveCode::singular);
  EXPECT_EQ(td::cr_solve(sys.ref(), td::StridedView<double>(x.data(), 4, 1)).code,
            td::SolveCode::zero_pivot);
  EXPECT_EQ(td::rd_solve(sys.ref(), td::StridedView<double>(x.data(), 4, 1)).code,
            td::SolveCode::zero_pivot);
  auto copy = sys.clone();
  EXPECT_EQ(td::pcr_solve(copy.ref(), td::StridedView<double>(x.data(), 4, 1)).code,
            td::SolveCode::zero_pivot);
}

TEST(FailureInjection, MismatchedSizesAreBadSize) {
  Xoshiro256 rng(2);
  td::TridiagSystem<double> sys(8);
  wl::fill_matrix(wl::Kind::random_dominant, sys.ref(), rng);
  std::vector<double> x(7);  // wrong
  EXPECT_EQ(td::thomas_solve(sys.ref(), td::StridedView<double>(x.data(), 7, 1)).code,
            td::SolveCode::bad_size);
  EXPECT_EQ(td::lu_gtsv(sys.ref(), td::StridedView<double>(x.data(), 7, 1)).code,
            td::SolveCode::bad_size);
  EXPECT_EQ(td::cr_solve(sys.ref(), td::StridedView<double>(x.data(), 7, 1)).code,
            td::SolveCode::bad_size);
  EXPECT_EQ(td::rd_solve(sys.ref(), td::StridedView<double>(x.data(), 7, 1)).code,
            td::SolveCode::bad_size);
}

TEST(FailureInjection, EmptyAndUnitBatches) {
  const auto dev = gs::gtx480();
  td::SystemBatch<double> empty(0, 0, td::Layout::contiguous);
  const auto rep = gp::hybrid_solve(dev, empty);
  EXPECT_DOUBLE_EQ(rep.total_us(), 0.0);

  auto unit = wl::make_batch<double>(wl::Kind::random_dominant, 1, 1,
                                     td::Layout::contiguous, 3);
  const double b = unit.b()[0], d = unit.d()[0];
  gp::hybrid_solve(dev, unit);
  EXPECT_NEAR(unit.d()[0], d / b, 1e-14);
}

TEST(FailureInjection, HybridWithOversizedForcedK) {
  // force_k = 8 on a 100-row system: 2^k = 256 exceeds the system size.
  // Planning rejects this up front with a structured bad-argument error
  // (it used to reach the kernel and solve with mostly-empty reduced
  // classes); a forced k that fits must still solve correctly.
  const auto dev = gs::gtx480();
  auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 2, 100,
                                      td::Layout::contiguous, 4);
  const auto orig = batch.clone();
  gp::HybridOptions opts;
  opts.force_k = 8;
  EXPECT_THROW(gp::hybrid_solve(dev, batch, opts), std::invalid_argument);

  opts.force_k = 6;  // 64 <= 100: legal, and the solve must be correct
  gp::hybrid_solve(dev, batch, opts);
  auto check = orig.clone();
  std::vector<double> x(100);
  for (std::size_t m = 0; m < 2; ++m) {
    auto sys = check.system(m);
    ASSERT_TRUE(
        td::lu_gtsv<double>(sys, td::StridedView<double>(x.data(), 100, 1)).ok());
    for (std::size_t i = 0; i < 100; ++i) {
      EXPECT_NEAR(batch.d()[batch.index(m, i)], x[i], 1e-8);
    }
  }
}

TEST(FailureInjection, HybridRejectsImpossibleK) {
  const auto dev = gs::gtx480();
  auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 2, 64,
                                      td::Layout::contiguous, 5);
  gp::HybridOptions opts;
  opts.force_k = 11;  // 2048 threads > 1024/block: rejected at plan time
  EXPECT_THROW(gp::hybrid_solve(dev, batch, opts), std::invalid_argument);
  opts.force_k = 9;  // 512 > N = 64: also a plan-time bad argument
  EXPECT_THROW(gp::hybrid_solve(dev, batch, opts), std::invalid_argument);
  // Shared-memory exhaustion is still the launch layer's length_error:
  // k = 9 fits a 1024-row system thread- and shape-wise, but its window
  // (~65 KB of rows) exceeds the GTX480's 48 KB shared memory.
  auto big = wl::make_batch<double>(wl::Kind::random_dominant, 2, 1024,
                                    td::Layout::contiguous, 5);
  EXPECT_THROW(gp::hybrid_solve(dev, big, opts), std::length_error);
}

TEST(FailureInjection, TiledPcrSharedOverflowThrows) {
  const auto dev = gs::gtx480();
  const std::size_t n = 8192;
  auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 1, n,
                                      td::Layout::contiguous, 6);
  std::vector<gp::TiledPcrWork<double>> work{
      {batch.system(0), batch.system(0), 0, n}};
  gp::TiledPcrConfig cfg;
  cfg.k = 8;
  cfg.c = 8;  // window of ~2 * 8 * 256 rows * 32 B >> 48 KB
  EXPECT_THROW(gp::tiled_pcr_kernel<double>(dev, work, cfg), std::length_error);
}

TEST(FailureInjection, MultiWindowSharedOverflowThrows) {
  const auto dev = gs::gtx480();
  const std::size_t n = 4096;
  auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 8, n,
                                      td::Layout::contiguous, 7);
  std::vector<gp::TiledPcrWork<double>> work;
  for (std::size_t m = 0; m < 8; ++m) {
    work.push_back({batch.system(m), batch.system(m), 0, n});
  }
  gp::TiledPcrConfig cfg;
  cfg.k = 8;                  // ~32 KB per window
  cfg.systems_per_block = 4;  // 4 windows > 48 KB
  EXPECT_THROW(gp::tiled_pcr_kernel<double>(dev, work, cfg), std::length_error);
}

TEST(FailureInjection, GtsvWorkspaceTooSmall) {
  Xoshiro256 rng(8);
  td::TridiagSystem<double> sys(16);
  wl::fill_matrix(wl::Kind::random_dominant, sys.ref(), rng);
  std::vector<double> x(16), small(8);
  td::GtsvWorkspace<double> ws{std::span<double>(small), std::span<double>(small),
                               std::span<double>(small), std::span<double>(small)};
  EXPECT_EQ(td::lu_gtsv(sys.ref(), td::StridedView<double>(x.data(), 16, 1), ws).code,
            td::SolveCode::bad_size);
}

TEST(FailureInjection, ZhangThrowsBeyondShared) {
  const auto dev = gs::gtx480();
  auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 1, 1537,
                                      td::Layout::contiguous, 9);
  EXPECT_THROW(gp::zhang_solve<double>(dev, batch), std::invalid_argument);
}

TEST(FailureInjection, LaunchRejectsZeroThreads) {
  const auto dev = gs::gtx480();
  EXPECT_THROW(gs::launch(dev, {1, 0}, [](gs::BlockContext&) {}),
               std::invalid_argument);
}

TEST(FailureInjection, WeakDominanceStillSolvesPoisson) {
  // Poisson rows are only weakly dominant (|b| == |a|+|c| in the
  // interior); the pivot-free pipeline must still be accurate.
  const auto dev = gs::gtx480();
  auto batch = wl::make_batch<double>(wl::Kind::poisson1d, 4, 1000,
                                      td::Layout::contiguous, 10);
  const auto orig = batch.clone();
  gp::hybrid_solve(dev, batch);
  auto check = orig.clone();
  std::vector<double> x(1000);
  for (std::size_t m = 0; m < 4; ++m) {
    auto sys = check.system(m);
    ASSERT_TRUE(
        td::lu_gtsv<double>(sys, td::StridedView<double>(x.data(), 1000, 1)).ok());
    for (std::size_t i = 0; i < 1000; ++i) {
      EXPECT_NEAR(batch.d()[batch.index(m, i)], x[i], 1e-6);
    }
  }
}

// ---------------------------------------------------------------------------
// Guarded solve path (DESIGN.md "Guarded solve path"): detection must be
// read-only and batched recovery must touch only the flagged systems.

namespace {

/// Diagonally dominant batch with one deliberately broken system: a zero
/// diagonal entry keeps the matrix nonsingular (pivoting LU still solves
/// it) but breaks every pivot-free elimination.
td::SystemBatch<double> broken_batch(std::size_t m_count, std::size_t n,
                                     std::size_t target, std::uint64_t seed) {
  auto batch = wl::make_batch<double>(wl::Kind::random_dominant, m_count, n,
                                      td::Layout::contiguous, seed);
  batch.b()[batch.index(target, 0)] = 0.0;
  return batch;
}

}  // namespace

TEST(GuardedSolve, ResidualInfPropagatesNanNotZero) {
  Xoshiro256 rng(11);
  td::TridiagSystem<double> sys(16);
  wl::fill_matrix(wl::Kind::random_dominant, sys.ref(), rng);
  wl::fill_rhs_random(sys.ref(), rng);
  std::vector<double> x(16, std::numeric_limits<double>::quiet_NaN());
  const td::StridedView<const double> xv(x.data(), 16, 1);
  // A fully-NaN "solution" must report NaN, never a reassuring 0.0.
  EXPECT_TRUE(std::isnan(td::residual_inf(td::as_const(sys.ref()), xv)));
  EXPECT_TRUE(std::isnan(td::relative_residual(td::as_const(sys.ref()), xv)));
}

TEST(GuardedSolve, RelativeResidualZeroDenominatorIsNan) {
  td::TridiagSystem<double> zero(4);  // all-zero matrix, rhs and solution
  std::vector<double> x(4, 0.0);
  const td::StridedView<const double> xv(x.data(), 4, 1);
  EXPECT_TRUE(std::isnan(td::relative_residual(td::as_const(zero.ref()), xv)));
  // The NaN contract composes with NaN-safe gates: !(rel <= gate) flags it.
  const double rel = td::relative_residual(td::as_const(zero.ref()), xv);
  EXPECT_TRUE(!(rel <= 1e-8));
}

TEST(GuardedSolve, ThomasFlagsNanPivot) {
  Xoshiro256 rng(12);
  td::TridiagSystem<double> sys(32);
  wl::fill_matrix(wl::Kind::random_dominant, sys.ref(), rng);
  wl::fill_rhs_random(sys.ref(), rng);
  sys.b()[5] = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> x(32);
  const auto st =
      td::thomas_solve(sys.ref(), td::StridedView<double>(x.data(), 32, 1));
  EXPECT_EQ(st.code, td::SolveCode::zero_pivot);
  EXPECT_EQ(st.index, 5u);
}

TEST(GuardedSolve, ThomasGuardTracksPivotGrowth) {
  // Benign dominant system: growth stays far below the near-singular limit.
  Xoshiro256 rng(13);
  td::TridiagSystem<double> nice(64);
  wl::fill_matrix(wl::Kind::random_dominant, nice.ref(), rng);
  wl::fill_rhs_random(nice.ref(), rng);
  std::vector<double> x(64);
  std::vector<double> cprime(64);
  td::SolveStatus guard;
  ASSERT_TRUE(td::thomas_solve(nice.ref(),
                               td::StridedView<double>(x.data(), 64, 1),
                               std::span<double>(cprime), &guard)
                  .ok());
  EXPECT_GE(guard.pivot_growth, 1.0);
  EXPECT_LT(guard.pivot_growth, td::default_growth_limit<double>());

  // Tiny pivot with O(1) neighbours: growth explodes and the batch policy
  // upgrades the system to near_singular.
  td::TridiagSystem<double> wild(2);
  wild.b()[0] = 1e-9;
  wild.c()[0] = 1.0;
  wild.a()[1] = 1.0;
  wild.b()[1] = 4.0;
  wild.d()[0] = 1.0;
  wild.d()[1] = 1.0;
  std::vector<double> y(2), cp2(2);
  td::SolveStatus wild_guard;
  ASSERT_TRUE(td::thomas_solve(wild.ref(),
                               td::StridedView<double>(y.data(), 2, 1),
                               std::span<double>(cp2), &wild_guard)
                  .ok());
  EXPECT_GT(wild_guard.pivot_growth, 1e8);
  td::BatchStatus bs(1);
  bs.absorb(0, wild_guard);
  bs.apply_growth_limit(td::default_growth_limit<double>());
  EXPECT_EQ(bs[0].code, td::SolveCode::near_singular);
}

TEST(GuardedSolve, HostTiledPcrGuardIsReadOnlyAndDetects) {
  Xoshiro256 rng(14);
  td::TridiagSystem<double> sys(128);
  wl::fill_matrix(wl::Kind::random_dominant, sys.ref(), rng);
  wl::fill_rhs_random(sys.ref(), rng);
  auto guarded = sys.clone();
  auto plain = sys.clone();

  td::SolveStatus guard;
  td::tiled_pcr_reduce(guarded.ref(), 3, &guard);
  td::tiled_pcr_reduce(plain.ref(), 3);
  EXPECT_EQ(guard.code, td::SolveCode::ok);
  EXPECT_GE(guard.pivot_growth, 1.0);
  for (std::size_t i = 0; i < 128; ++i) {
    // Detection must not perturb a single bit of the reduction.
    EXPECT_EQ(guarded.b()[i], plain.b()[i]);
    EXPECT_EQ(guarded.d()[i], plain.d()[i]);
  }

  auto broken = sys.clone();
  broken.b()[64] = 0.0;  // neighbour combines divide by this pivot
  td::SolveStatus bad;
  td::tiled_pcr_reduce(broken.ref(), 3, &bad);
  EXPECT_EQ(bad.code, td::SolveCode::zero_pivot);
}

TEST(GuardedSolve, PthomasGuardFlagsExactlyTheBrokenLane) {
  const auto dev = gs::gtx480();
  const std::size_t m_count = 4, n = 48;
  auto batch = broken_batch(m_count, n, 2, 15);
  std::vector<td::SystemRef<double>> systems;
  for (std::size_t m = 0; m < m_count; ++m) systems.push_back(batch.system(m));
  std::vector<td::SolveStatus> guard(m_count);
  gp::pthomas_solve<double>(dev, systems, {}, 128, guard);
  for (std::size_t m = 0; m < m_count; ++m) {
    if (m == 2) {
      EXPECT_EQ(guard[m].code, td::SolveCode::zero_pivot);
      EXPECT_EQ(guard[m].index, 0u);
    } else {
      EXPECT_EQ(guard[m].code, td::SolveCode::ok);
    }
  }
}

TEST(GuardedSolve, HybridGuardIsFreeOnHealthyInput) {
  const auto dev = gs::gtx480();
  auto a = wl::make_batch<double>(wl::Kind::random_dominant, 4, 512,
                                  td::Layout::contiguous, 16);
  auto b = a.clone();

  gp::HybridOptions guarded_opts;  // guard.detect defaults to true
  const auto guarded = gp::hybrid_solve(dev, a, guarded_opts);
  gp::HybridOptions plain_opts;
  plain_opts.guard.detect = false;
  const auto plain = gp::hybrid_solve(dev, b, plain_opts);

  // Zero-cost contract: bit-identical solution, identical simulated time.
  for (std::size_t i = 0; i < a.total_rows(); ++i) {
    EXPECT_EQ(a.d()[i], b.d()[i]);
  }
  EXPECT_EQ(guarded.total_us(), plain.total_us());
  EXPECT_EQ(guarded.flagged, 0u);
  ASSERT_EQ(guarded.status.size(), 4u);
  EXPECT_TRUE(guarded.status.all_ok());
  EXPECT_TRUE(plain.status.empty());
}

TEST(GuardedSolve, HybridFallbackRecoversOnlyFlaggedSystem) {
  const auto dev = gs::gtx480();
  const std::size_t m_count = 6, n = 256, target = 3;
  auto pristine = broken_batch(m_count, n, target, 17);
  auto batch = pristine.clone();
  auto reference = pristine.clone();  // guarded solve, no fallback

  gp::HybridOptions detect_only;
  const auto det = gp::hybrid_solve(dev, reference, detect_only);
  ASSERT_EQ(det.flagged, 1u);
  EXPECT_FALSE(det.status[target].ok());

  gp::HybridOptions opts;
  opts.guard.fallback = true;
  const auto rep = gp::hybrid_solve(dev, batch, opts);
  EXPECT_EQ(rep.flagged, 1u);
  EXPECT_EQ(rep.fallback_solves, 1u);
  EXPECT_EQ(rep.refine_steps, 0u);
  // The code survives recovery as the detection record.
  EXPECT_FALSE(rep.status[target].ok());

  const auto& cp = pristine;
  const auto& cb = batch;
  for (std::size_t m = 0; m < m_count; ++m) {
    if (m == target) {
      // Recovered through pivoting LU from the pristine input.
      EXPECT_LE(td::relative_residual(cp.system(m), cb.system(m).d), 1e-10);
    } else {
      EXPECT_TRUE(rep.status[m].ok());
      // Untouched by recovery: bit-identical to the detect-only solve.
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(batch.d()[batch.index(m, i)],
                  reference.d()[reference.index(m, i)]);
      }
    }
  }
}

TEST(GuardedSolve, HybridRefinementRunsWhenGateForcesIt) {
  const auto dev = gs::gtx480();
  auto batch = broken_batch(4, 128, 1, 18);
  gp::HybridOptions opts;
  opts.guard.refine = true;  // implies fallback in the registry; here both:
  opts.guard.fallback = true;
  opts.guard.refine_gate = 1e-300;  // always below any residual: max steps
  const auto rep = gp::hybrid_solve(dev, batch, opts);
  EXPECT_EQ(rep.flagged, 1u);
  EXPECT_EQ(rep.fallback_solves, 1u);
  EXPECT_EQ(rep.refine_steps, 2u);  // RecoverOptions::max_refine_steps
}

TEST(GuardedSolve, RegistryFlagsOnlyTheSingularSystem) {
  const auto dev = gs::gtx480();
  const std::size_t m_count = 6, n = 64, target = 3;
  auto good = wl::make_batch<double>(wl::Kind::random_dominant, m_count, n,
                                     td::Layout::contiguous, 19);
  auto bad = good.clone();
  bad.b()[bad.index(target, 0)] = 0.0;

  gp::SolverRunOptions ropts;
  ropts.guard = true;
  for (const auto kind : gp::all_solver_kinds()) {
    SCOPED_TRACE(gp::solver_name(kind));
    td::SystemBatch<double> good_x, bad_x;
    const auto good_out = gp::run_solver(kind, dev, good, ropts, &good_x);
    if (!good_out.supported) continue;  // size/config rejected: fine
    EXPECT_EQ(good_out.flagged, 0u);
    ASSERT_EQ(good_out.status.size(), m_count);
    EXPECT_TRUE(good_out.status.all_ok());

    const auto bad_out = gp::run_solver(kind, dev, bad, ropts, &bad_x);
    ASSERT_TRUE(bad_out.supported);
    EXPECT_EQ(bad_out.flagged, 1u);
    EXPECT_FALSE(bad_out.status[target].ok());
    for (std::size_t m = 0; m < m_count; ++m) {
      if (m == target) continue;
      EXPECT_TRUE(bad_out.status[m].ok());
      // The broken system must not poison its batch-mates: their
      // solutions are bit-identical to the all-good run.
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(bad_x.d()[bad_x.index(m, i)],
                  good_x.d()[good_x.index(m, i)]);
      }
    }
  }
}

TEST(GuardedSolve, RegistryFallbackRecoversEverySolverKind) {
  const auto dev = gs::gtx480();
  const std::size_t m_count = 6, n = 64, target = 3;
  const auto bad = broken_batch(m_count, n, target, 20);

  gp::SolverRunOptions ropts;
  ropts.fallback = true;  // implies guard
  for (const auto kind : gp::all_solver_kinds()) {
    SCOPED_TRACE(gp::solver_name(kind));
    td::SystemBatch<double> sol;
    const auto out = gp::run_solver(kind, dev, bad, ropts, &sol);
    if (!out.supported) continue;
    EXPECT_EQ(out.flagged, 1u);
    EXPECT_EQ(out.fallback_solves, 1u);
    EXPECT_FALSE(out.status[target].ok());  // detection record survives
    const auto& csol = sol;
    for (std::size_t m = 0; m < m_count; ++m) {
      EXPECT_LE(td::relative_residual(bad.system(m), csol.system(m).d), 1e-10);
    }
  }
}

TEST(GuardedSolve, GuardMetricsCountFlaggedAndRecovered) {
  namespace obs = tridsolve::obs;
  auto& reg = obs::MetricsRegistry::instance();
  const double flagged0 = reg.counter("solver.guard.flagged");
  const double fallback0 = reg.counter("solver.guard.fallback");

  const auto dev = gs::gtx480();
  const auto bad = broken_batch(4, 64, 1, 22);
  gp::SolverRunOptions ropts;
  ropts.fallback = true;
  const auto out = gp::run_solver(gp::SolverKind::hybrid, dev, bad, ropts);
  ASSERT_TRUE(out.supported);
  ASSERT_EQ(out.flagged, 1u);

  EXPECT_EQ(reg.counter("solver.guard.flagged"), flagged0 + 1.0);
  EXPECT_EQ(reg.counter("solver.guard.fallback"), fallback0 + 1.0);
}
