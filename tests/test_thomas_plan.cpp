// ThomasPlan (factor-once / solve-many) tests.

#include <gtest/gtest.h>

#include <vector>

#include "tridiag/residual.hpp"
#include "tridiag/thomas.hpp"
#include "tridiag/thomas_plan.hpp"
#include "util/random.hpp"
#include "workloads/generators.hpp"

namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;
using tridsolve::util::Xoshiro256;

namespace {

td::TridiagSystem<double> make_system(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  td::TridiagSystem<double> s(n);
  wl::fill_matrix(wl::Kind::random_dominant, s.ref(), rng);
  wl::fill_rhs_random(s.ref(), rng);
  return s;
}

}  // namespace

TEST(ThomasPlan, MatchesDirectSolveBitwise) {
  auto sys = make_system(300, 1);
  const td::ThomasPlan<double> plan(td::as_const(sys.ref()));
  ASSERT_TRUE(plan.ok());

  std::vector<double> x_plan(300), x_direct(300);
  ASSERT_TRUE(plan.solve(td::as_const(sys.ref()).d,
                         td::StridedView<double>(x_plan.data(), 300, 1))
                  .ok());
  auto copy = sys.clone();
  ASSERT_TRUE(
      td::thomas_solve(copy.ref(), td::StridedView<double>(x_direct.data(), 300, 1))
          .ok());
  // Same arithmetic, same order: bitwise identical.
  for (std::size_t i = 0; i < 300; ++i) EXPECT_EQ(x_plan[i], x_direct[i]) << i;
}

TEST(ThomasPlan, ManyRhsAgainstOneFactorization) {
  auto sys = make_system(128, 2);
  const td::ThomasPlan<double> plan(td::as_const(sys.ref()));
  ASSERT_TRUE(plan.ok());

  Xoshiro256 rng(3);
  const std::size_t num_rhs = 10;
  std::vector<double> d(num_rhs * 128), x(num_rhs * 128);
  tridsolve::util::fill_uniform(rng, std::span<double>(d), -1.0, 1.0);
  ASSERT_TRUE(plan.solve_many(d, x, num_rhs).ok());

  for (std::size_t r = 0; r < num_rhs; ++r) {
    for (std::size_t i = 0; i < 128; ++i) {
      sys.d()[i] = d[r * 128 + i];
    }
    const double res = td::residual_inf(
        td::as_const(sys.ref()),
        td::StridedView<const double>(x.data() + r * 128, 128, 1));
    EXPECT_LT(res, 1e-11) << "rhs " << r;
  }
}

TEST(ThomasPlan, SolveMayAliasRhs) {
  auto sys = make_system(64, 4);
  const td::ThomasPlan<double> plan(td::as_const(sys.ref()));
  std::vector<double> expected(64);
  ASSERT_TRUE(plan.solve(td::as_const(sys.ref()).d,
                         td::StridedView<double>(expected.data(), 64, 1))
                  .ok());
  auto aliased = sys.ref().d;
  ASSERT_TRUE(plan.solve(td::as_const(sys.ref()).d, aliased).ok());
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(aliased[i], expected[i]);
}

TEST(ThomasPlan, ReportsZeroPivotAtFactorTime) {
  td::TridiagSystem<double> sys(3);
  sys.b()[0] = 0.0;
  const td::ThomasPlan<double> plan(td::as_const(sys.ref()));
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code, td::SolveCode::zero_pivot);
  std::vector<double> x(3);
  EXPECT_EQ(plan.solve(td::as_const(sys.ref()).d,
                       td::StridedView<double>(x.data(), 3, 1))
                .code,
            td::SolveCode::zero_pivot);
}

TEST(ThomasPlan, RejectsWrongSizes) {
  auto sys = make_system(8, 5);
  const td::ThomasPlan<double> plan(td::as_const(sys.ref()));
  std::vector<double> x(7);
  EXPECT_EQ(plan.solve(td::as_const(sys.ref()).d,
                       td::StridedView<double>(x.data(), 7, 1))
                .code,
            td::SolveCode::bad_size);
  std::vector<double> d(8 * 2), xx(8);
  EXPECT_EQ(plan.solve_many(d, xx, 2).code, td::SolveCode::bad_size);
}

TEST(ThomasPlan, RefactorReusesStorage) {
  auto s1 = make_system(50, 6);
  auto s2 = make_system(50, 7);
  td::ThomasPlan<double> plan(td::as_const(s1.ref()));
  plan.factor(td::as_const(s2.ref()));
  ASSERT_TRUE(plan.ok());
  std::vector<double> x(50);
  ASSERT_TRUE(plan.solve(td::as_const(s2.ref()).d,
                         td::StridedView<double>(x.data(), 50, 1))
                  .ok());
  EXPECT_LT(td::residual_inf(td::as_const(s2.ref()),
                             td::StridedView<const double>(x.data(), 50, 1)),
            1e-11);
}

TEST(ThomasPlan, EmptyPlanIsHarmless) {
  td::ThomasPlan<double> plan;
  EXPECT_EQ(plan.size(), 0u);
  EXPECT_TRUE(plan.ok());
  EXPECT_TRUE(plan.solve(td::StridedView<const double>(nullptr, 0, 1),
                         td::StridedView<double>(nullptr, 0, 1))
                  .ok());
}
