// ThomasPlan (factor-once / solve-many) tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "obs/metrics.hpp"

#include "tridiag/residual.hpp"
#include "tridiag/thomas.hpp"
#include "tridiag/thomas_plan.hpp"
#include "util/random.hpp"
#include "workloads/generators.hpp"

namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;
using tridsolve::util::Xoshiro256;

namespace {

td::TridiagSystem<double> make_system(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  td::TridiagSystem<double> s(n);
  wl::fill_matrix(wl::Kind::random_dominant, s.ref(), rng);
  wl::fill_rhs_random(s.ref(), rng);
  return s;
}

}  // namespace

TEST(ThomasPlan, MatchesDirectSolveBitwise) {
  auto sys = make_system(300, 1);
  const td::ThomasPlan<double> plan(td::as_const(sys.ref()));
  ASSERT_TRUE(plan.ok());

  std::vector<double> x_plan(300), x_direct(300);
  ASSERT_TRUE(plan.solve(td::as_const(sys.ref()).d,
                         td::StridedView<double>(x_plan.data(), 300, 1))
                  .ok());
  auto copy = sys.clone();
  ASSERT_TRUE(
      td::thomas_solve(copy.ref(), td::StridedView<double>(x_direct.data(), 300, 1))
          .ok());
  // Same arithmetic, same order: bitwise identical.
  for (std::size_t i = 0; i < 300; ++i) EXPECT_EQ(x_plan[i], x_direct[i]) << i;
}

TEST(ThomasPlan, ManyRhsAgainstOneFactorization) {
  auto sys = make_system(128, 2);
  const td::ThomasPlan<double> plan(td::as_const(sys.ref()));
  ASSERT_TRUE(plan.ok());

  Xoshiro256 rng(3);
  const std::size_t num_rhs = 10;
  std::vector<double> d(num_rhs * 128), x(num_rhs * 128);
  tridsolve::util::fill_uniform(rng, std::span<double>(d), -1.0, 1.0);
  ASSERT_TRUE(plan.solve_many(d, x, num_rhs).ok());

  for (std::size_t r = 0; r < num_rhs; ++r) {
    for (std::size_t i = 0; i < 128; ++i) {
      sys.d()[i] = d[r * 128 + i];
    }
    const double res = td::residual_inf(
        td::as_const(sys.ref()),
        td::StridedView<const double>(x.data() + r * 128, 128, 1));
    EXPECT_LT(res, 1e-11) << "rhs " << r;
  }
}

TEST(ThomasPlan, SolveMayAliasRhs) {
  auto sys = make_system(64, 4);
  const td::ThomasPlan<double> plan(td::as_const(sys.ref()));
  std::vector<double> expected(64);
  ASSERT_TRUE(plan.solve(td::as_const(sys.ref()).d,
                         td::StridedView<double>(expected.data(), 64, 1))
                  .ok());
  auto aliased = sys.ref().d;
  ASSERT_TRUE(plan.solve(td::as_const(sys.ref()).d, aliased).ok());
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(aliased[i], expected[i]);
}

TEST(ThomasPlan, ReportsZeroPivotAtFactorTime) {
  td::TridiagSystem<double> sys(3);
  sys.b()[0] = 0.0;
  const td::ThomasPlan<double> plan(td::as_const(sys.ref()));
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code, td::SolveCode::zero_pivot);
  std::vector<double> x(3);
  EXPECT_EQ(plan.solve(td::as_const(sys.ref()).d,
                       td::StridedView<double>(x.data(), 3, 1))
                .code,
            td::SolveCode::zero_pivot);
}

TEST(ThomasPlan, RejectsWrongSizes) {
  auto sys = make_system(8, 5);
  const td::ThomasPlan<double> plan(td::as_const(sys.ref()));
  std::vector<double> x(7);
  EXPECT_EQ(plan.solve(td::as_const(sys.ref()).d,
                       td::StridedView<double>(x.data(), 7, 1))
                .code,
            td::SolveCode::bad_size);
  std::vector<double> d(8 * 2), xx(8);
  EXPECT_EQ(plan.solve_many(d, xx, 2).code, td::SolveCode::bad_size);
}

TEST(ThomasPlan, RefactorReusesStorage) {
  auto s1 = make_system(50, 6);
  auto s2 = make_system(50, 7);
  td::ThomasPlan<double> plan(td::as_const(s1.ref()));
  plan.factor(td::as_const(s2.ref()));
  ASSERT_TRUE(plan.ok());
  std::vector<double> x(50);
  ASSERT_TRUE(plan.solve(td::as_const(s2.ref()).d,
                         td::StridedView<double>(x.data(), 50, 1))
                  .ok());
  EXPECT_LT(td::residual_inf(td::as_const(s2.ref()),
                             td::StridedView<const double>(x.data(), 50, 1)),
            1e-11);
}

TEST(ThomasPlan, EmptyPlanIsHarmless) {
  td::ThomasPlan<double> plan;
  EXPECT_EQ(plan.size(), 0u);
  EXPECT_TRUE(plan.ok());
  EXPECT_TRUE(plan.solve(td::StridedView<const double>(nullptr, 0, 1),
                         td::StridedView<double>(nullptr, 0, 1))
                  .ok());
}

// ---------------------------------------------------------------------
// BatchThomasPlan: whole-batch factor-once / solve-many.

TEST(BatchThomasPlan, MatchesPerSystemThomasPlanBitwise) {
  for (const auto layout : {td::Layout::interleaved, td::Layout::contiguous}) {
    const auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 33,
                                              97, layout, /*seed=*/21);
    td::BatchThomasPlan<double> plan(batch);
    ASSERT_TRUE(plan.ok());

    std::vector<double> x(batch.total_rows());
    ASSERT_TRUE(plan.solve(batch.d(), x).ok());

    for (std::size_t m = 0; m < batch.num_systems(); ++m) {
      const auto sys = batch.system(m);
      const td::ThomasPlan<double> single(td::as_const(sys));
      ASSERT_TRUE(single.ok()) << m;
      std::vector<double> xs(batch.system_size());
      ASSERT_TRUE(single
                      .solve(td::as_const(sys).d,
                             td::StridedView<double>(xs.data(), xs.size(), 1))
                      .ok());
      // Same per-lane arithmetic in the same order: bitwise identical.
      for (std::size_t i = 0; i < xs.size(); ++i) {
        EXPECT_EQ(x[plan.index(m, i)], xs[i])
            << td::layout_name(layout) << " system " << m << " row " << i;
      }
    }
  }
}

TEST(BatchThomasPlan, SolveMayAliasRhsAndReusesOneFactorization) {
  const auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 16, 64,
                                            td::Layout::interleaved, 22);
  const td::BatchThomasPlan<double> plan(batch);
  ASSERT_TRUE(plan.ok());

  std::vector<double> expected(batch.total_rows());
  ASSERT_TRUE(plan.solve(batch.d(), expected).ok());

  // In place over a mutable copy, twice, against the same factorization.
  auto work = batch.clone();
  ASSERT_TRUE(plan.solve(work.d(), work.d()).ok());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(work.d()[i], expected[i]) << i;
  }
  std::copy(batch.d().begin(), batch.d().end(), work.d().begin());
  ASSERT_TRUE(plan.solve(work.d(), work.d()).ok());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(work.d()[i], expected[i]) << i;
  }
}

TEST(BatchThomasPlan, SingularLaneIsIsolated) {
  auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 5, 40,
                                      td::Layout::interleaved, 23);
  batch.b()[batch.index(2, 0)] = 0.0;  // break system 2 at its first pivot
  const td::BatchThomasPlan<double> plan(batch);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.statuses()[2].code, td::SolveCode::zero_pivot);
  EXPECT_EQ(plan.statuses()[2].index, 0u);

  std::vector<double> x(batch.total_rows(), -1.0);
  const auto st = plan.solve(batch.d(), x);
  EXPECT_EQ(st.code, td::SolveCode::zero_pivot);

  for (std::size_t m = 0; m < 5; ++m) {
    if (m == 2) {
      // The broken lane yields zeros (its plan rows were zero-filled)...
      for (std::size_t i = 0; i < 40; ++i) {
        EXPECT_EQ(x[plan.index(m, i)], 0.0) << i;
      }
      continue;
    }
    // ...while healthy lanes match their standalone plans bitwise.
    EXPECT_TRUE(plan.statuses()[m].ok()) << m;
    const auto sys = batch.system(m);
    const td::ThomasPlan<double> single(td::as_const(sys));
    std::vector<double> xs(40);
    ASSERT_TRUE(single
                    .solve(td::as_const(sys).d,
                           td::StridedView<double>(xs.data(), 40, 1))
                    .ok());
    for (std::size_t i = 0; i < 40; ++i) {
      EXPECT_EQ(x[plan.index(m, i)], xs[i]) << m << "," << i;
    }
  }
}

TEST(BatchThomasPlan, RejectsShortSpansAndCountsReuse) {
  const auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 4, 16,
                                            td::Layout::contiguous, 24);
  const td::BatchThomasPlan<double> plan(batch);
  std::vector<double> x(batch.total_rows() - 1);
  EXPECT_EQ(plan.solve(batch.d(), x).code, td::SolveCode::bad_size);

  auto& registry = tridsolve::obs::MetricsRegistry::instance();
  const double factors = registry.counter("tridiag.plan.batch_factors");
  const double solves = registry.counter("tridiag.plan.batch_solves");
  x.resize(batch.total_rows());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(plan.solve(batch.d(), x).ok());
  EXPECT_EQ(registry.counter("tridiag.plan.batch_factors"), factors)
      << "solves must not refactor";
  EXPECT_EQ(registry.counter("tridiag.plan.batch_solves"), solves + 3);
}
