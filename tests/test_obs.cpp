// Tests for the observability layer: the JSON document model, the
// process-wide metrics registry, the Chrome trace exporter (re-parsed and
// structurally checked against a real simulated hybrid solve), the Eq. 8-9
// redundancy accounting surfaced through metrics, and the JSONL sink.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "gpu_solvers/hybrid_solver.hpp"
#include "gpusim/device_spec.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "tridiag/pcr.hpp"
#include "workloads/generators.hpp"

namespace gp = tridsolve::gpu;
namespace gs = tridsolve::gpusim;
namespace obs = tridsolve::obs;
namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

// ---------------------------------------------------------------- JSON --

TEST(Json, BuildDumpParseRoundtrip) {
  obs::JsonValue v = obs::JsonValue::object();
  v["name"] = "tile \"window\"\n";
  v["count"] = 42;
  v["ratio"] = 0.375;
  v["flag"] = true;
  v["nothing"] = nullptr;
  v["list"].push_back(1);
  v["list"].push_back("two");

  const auto parsed = obs::JsonValue::parse(v.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("name")->as_string(), "tile \"window\"\n");
  EXPECT_DOUBLE_EQ(parsed->find("count")->as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parsed->find("ratio")->as_number(), 0.375);
  EXPECT_TRUE(parsed->find("flag")->as_bool());
  EXPECT_TRUE(parsed->find("nothing")->is_null());
  ASSERT_EQ(parsed->find("list")->size(), 2u);
  EXPECT_DOUBLE_EQ(parsed->find("list")->as_array()[0].as_number(), 1.0);
  EXPECT_EQ(parsed->find("list")->as_array()[1].as_string(), "two");
}

TEST(Json, IntegralNumbersDumpWithoutFraction) {
  EXPECT_EQ(obs::JsonValue(7).dump(), "7");
  EXPECT_EQ(obs::JsonValue(1764).dump(), "1764");
  EXPECT_EQ(obs::JsonValue(-3).dump(), "-3");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_FALSE(obs::JsonValue::parse("").has_value());
  EXPECT_FALSE(obs::JsonValue::parse("{").has_value());
  EXPECT_FALSE(obs::JsonValue::parse("{\"a\":1,}").has_value());
  EXPECT_FALSE(obs::JsonValue::parse("[1 2]").has_value());
  EXPECT_FALSE(obs::JsonValue::parse("truefalse").has_value());
  EXPECT_FALSE(obs::JsonValue::parse("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(obs::JsonValue::parse("\"unterminated").has_value());
}

TEST(Json, ParseHandlesEscapesAndWhitespace) {
  const auto v = obs::JsonValue::parse(" { \"k\" : \"a\\u0041\\n\" } ");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("k")->as_string(), "aA\n");
}

// ------------------------------------------------------------- metrics --

TEST(Metrics, CountersAccumulateAndGaugesLatch) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();
  obs::count("t.counter");
  obs::count("t.counter", 2.5);
  obs::gauge("t.gauge", 5.0);
  obs::gauge("t.gauge", 7.0);
  EXPECT_DOUBLE_EQ(reg.counter("t.counter"), 3.5);
  EXPECT_DOUBLE_EQ(reg.gauge("t.gauge"), 7.0);
  EXPECT_TRUE(reg.has_counter("t.counter"));
  EXPECT_FALSE(reg.has_counter("t.gauge"));
  EXPECT_DOUBLE_EQ(reg.counter("never.touched"), 0.0);

  const auto parsed = obs::JsonValue::parse(reg.to_json().dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(
      parsed->find("counters")->find("t.counter")->as_number(), 3.5);
  EXPECT_DOUBLE_EQ(parsed->find("gauges")->find("t.gauge")->as_number(), 7.0);

  reg.reset();
  EXPECT_FALSE(reg.has_counter("t.counter"));
}

TEST(Metrics, ScopedTimerRecordsCallsAndTime) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();
  {
    obs::ScopedTimer t("t.work");
  }
  {
    obs::ScopedTimer t("t.work");
  }
  EXPECT_DOUBLE_EQ(reg.counter("t.work.calls"), 2.0);
  EXPECT_GE(reg.counter("t.work.time_us"), 0.0);
  EXPECT_TRUE(reg.has_counter("t.work.time_us"));
}

// -------------------------------------------------- Chrome trace export --

TEST(ChromeTrace, HybridSolveExportsValidTrace) {
  obs::MetricsRegistry::instance().reset();
  const auto dev = gs::gtx480();
  auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 8, 256,
                                      td::Layout::contiguous, 11);
  const auto report = gp::hybrid_solve(dev, batch);
  ASSERT_GT(report.timeline.segments().size(), 0u);

  obs::ChromeTraceBuilder trace("test");
  trace.add_timeline(dev, report.timeline, "hybrid M=8 N=256");
  EXPECT_EQ(trace.event_count(), report.timeline.segments().size());

  const auto parsed = obs::JsonValue::parse(trace.str());
  ASSERT_TRUE(parsed.has_value());
  const obs::JsonValue* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // One "X" event per timeline segment, back-to-back and non-overlapping,
  // kernel events carrying launch-shaped args.
  std::size_t durations = 0, kernels = 0;
  double cursor = 0.0;
  for (const auto& ev : events->as_array()) {
    ASSERT_TRUE(ev.find("ph") != nullptr);
    if (ev.find("ph")->as_string() != "X") continue;
    ++durations;
    const double ts = ev.find("ts")->as_number();
    const double dur = ev.find("dur")->as_number();
    EXPECT_GE(ts + 1e-9, cursor) << "events must not overlap";
    EXPECT_GE(dur, 0.0);
    cursor = ts + dur;
    const obs::JsonValue* args = ev.find("args");
    ASSERT_NE(args, nullptr);
    if (const obs::JsonValue* kind = args->find("kind");
        kind && kind->as_string() == "host") {
      continue;
    }
    ++kernels;
    EXPECT_NE(args->find("grid"), nullptr);
    EXPECT_NE(args->find("block"), nullptr);
    EXPECT_NE(args->find("occupancy"), nullptr);
    EXPECT_NE(args->find("coalescing_efficiency"), nullptr);
  }
  EXPECT_EQ(durations, report.timeline.segments().size());
  EXPECT_GT(kernels, 0u);

  // The registry snapshot rides along under otherData.metrics.
  const obs::JsonValue* other = parsed->find("otherData");
  ASSERT_NE(other, nullptr);
  ASSERT_NE(other->find("metrics"), nullptr);
  EXPECT_NE(other->find("metrics")->find("counters"), nullptr);
}

TEST(ChromeTrace, WriteFileRoundtrips) {
  const auto dev = gs::gtx480();
  auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 4, 128,
                                      td::Layout::contiguous, 12);
  const auto report = gp::hybrid_solve(dev, batch);
  const std::string path = testing::TempDir() + "obs_trace.json";
  obs::ChromeTraceBuilder trace;
  trace.add_timeline(dev, report.timeline, "roundtrip");
  ASSERT_TRUE(trace.write_file(path));
  const auto parsed = obs::JsonValue::parse(slurp(path));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("traceEvents")->is_array(), true);
}

// --------------------------------------- Eq. 8-9 redundancy accounting --

TEST(Metrics, HybridSolveRecordsEq8And9Avoidance) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();

  // m = 4 whole-system windows, n = 512, forced k = 3 with c = 1:
  // sub-tile S = 8, so each window spans 512 / 8 = 64 tiles = 63 interior
  // boundaries. Per boundary the naive halo scheme would re-load
  // f(3) = 2^3 - 1 = 7 rows (Eq. 8) and redo g(3) = 3*8 - 16 + 2 = 10
  // eliminations (Eq. 9); the buffered sliding window avoids all of it.
  const auto dev = gs::gtx480();
  auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 4, 512,
                                      td::Layout::contiguous, 13);
  gp::HybridOptions opts;
  opts.force_k = 3;
  opts.variant = gp::WindowVariant::one_block_per_system;
  const auto report = gp::hybrid_solve(dev, batch, opts);

  EXPECT_EQ(report.k, 3u);
  EXPECT_EQ(report.redundant_loads, 0u);  // the paper's zero-redundancy claim

  ASSERT_EQ(td::pcr_halo(3), 7u);
  ASSERT_EQ(td::pcr_redundant_elims(3), 10u);
  const double boundaries = 4.0 * 63.0;
  EXPECT_DOUBLE_EQ(reg.gauge("transition.k"), 3.0);
  EXPECT_DOUBLE_EQ(reg.counter("pcr.windows"), 4.0);
  EXPECT_DOUBLE_EQ(reg.counter("pcr.sub_tile_boundaries"), boundaries);
  EXPECT_DOUBLE_EQ(reg.counter("pcr.redundant_loads_avoided"),
                   boundaries * 7.0);
  EXPECT_DOUBLE_EQ(reg.counter("pcr.redundant_elims_avoided"),
                   boundaries * 10.0);
  EXPECT_DOUBLE_EQ(reg.counter("pcr.redundant_loads"), 0.0);
  EXPECT_DOUBLE_EQ(reg.counter("hybrid.solves"), 1.0);
  EXPECT_DOUBLE_EQ(reg.counter("hybrid.variant.one_block_per_system"), 1.0);
  EXPECT_GT(reg.counter("gpusim.launches"), 0.0);
  EXPECT_DOUBLE_EQ(reg.counter("hybrid.solve.calls"), 1.0);
}

TEST(Metrics, SplitSystemRecordsActualRedundantLoads) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();
  const auto dev = gs::gtx480();
  auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 2, 4096,
                                      td::Layout::contiguous, 14);
  gp::HybridOptions opts;
  opts.force_k = 4;
  opts.variant = gp::WindowVariant::split_system;
  const auto report = gp::hybrid_solve(dev, batch, opts);
  EXPECT_GT(report.redundant_loads, 0u);  // halo re-loads between block groups
  EXPECT_DOUBLE_EQ(reg.counter("pcr.redundant_loads"),
                   static_cast<double>(report.redundant_loads));
  EXPECT_DOUBLE_EQ(reg.counter("hybrid.variant.split_system"), 1.0);
}

TEST(Metrics, WindowVariantNamesAreStable) {
  EXPECT_STREQ(gp::window_variant_name(gp::WindowVariant::auto_select),
               "auto");
  EXPECT_STREQ(gp::window_variant_name(gp::WindowVariant::one_block_per_system),
               "one_block_per_system");
  EXPECT_STREQ(gp::window_variant_name(gp::WindowVariant::split_system),
               "split_system");
  EXPECT_STREQ(
      gp::window_variant_name(gp::WindowVariant::multi_system_per_block),
      "multi_system_per_block");
}

// --------------------------------------------------------- JSONL sink --

TEST(Telemetry, JsonlSinkWritesOneParsableRecordPerLine) {
  const std::string path = testing::TempDir() + "obs_sink.jsonl";
  {
    obs::JsonlSink sink(path);
    ASSERT_TRUE(sink.enabled());
    for (int i = 0; i < 3; ++i) {
      obs::JsonValue rec = obs::JsonValue::object();
      rec["bench"] = "unit";
      rec["i"] = i;
      sink.write(rec);
    }
    EXPECT_EQ(sink.records_written(), 3u);
  }
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    const auto parsed = obs::JsonValue::parse(line);
    ASSERT_TRUE(parsed.has_value()) << "line " << lines << ": " << line;
    EXPECT_DOUBLE_EQ(parsed->find("i")->as_number(), lines);
    ++lines;
  }
  EXPECT_EQ(lines, 3);
}

TEST(Telemetry, DisabledSinkSwallowsWrites) {
  obs::JsonlSink sink;
  EXPECT_FALSE(sink.enabled());
  sink.write(obs::JsonValue::object());  // must not crash
  EXPECT_EQ(sink.records_written(), 0u);
}

TEST(Telemetry, SinkThrowsOnUnopenablePath) {
  EXPECT_THROW(obs::JsonlSink("/nonexistent-dir/x/y.jsonl"),
               std::runtime_error);
}
