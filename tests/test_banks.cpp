// Bank-conflict tracker tests: known access patterns must produce known
// serialization counts, and the instrumented CR layouts must agree
// numerically while differing in conflicts.

#include <gtest/gtest.h>

#include "gpu_solvers/cr_kernel.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/launch.hpp"
#include "tridiag/lu_pivot.hpp"
#include "workloads/generators.hpp"

namespace gs = tridsolve::gpusim;
namespace gp = tridsolve::gpu;
namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;

namespace {

/// Run one warp, each thread making one float shared access at
/// element index pattern(tid); return the serialization count.
std::size_t conflicts_for(const gs::DeviceSpec& dev,
                          std::size_t (*pattern)(std::size_t)) {
  const auto stats = gs::launch(dev, {1, 32}, [&](gs::BlockContext& ctx) {
    auto sh = ctx.shared<float>(4096);
    ctx.phase([&](gs::ThreadCtx& t) {
      (void)t.sload(&sh[pattern(static_cast<std::size_t>(t.tid()))]);
    });
  });
  return stats.costs.shared_serializations;
}

}  // namespace

TEST(BankTracker, UnitStrideFloatsAreConflictFree) {
  const auto dev = gs::gtx480();
  EXPECT_EQ(conflicts_for(dev, [](std::size_t t) { return t; }), 0u);
}

TEST(BankTracker, BroadcastIsConflictFree) {
  const auto dev = gs::gtx480();
  EXPECT_EQ(conflicts_for(dev, [](std::size_t) { return std::size_t{7}; }), 0u);
}

TEST(BankTracker, Stride32FloatsFullySerialize) {
  // 32 lanes all hitting bank 0 with distinct words: 32-way conflict,
  // 31 extra serializations.
  const auto dev = gs::gtx480();
  EXPECT_EQ(conflicts_for(dev, [](std::size_t t) { return t * 32; }), 31u);
}

TEST(BankTracker, Stride2FloatsTwoWay) {
  // words 0,2,4,...,62: banks hit twice each -> 1 extra serialization.
  const auto dev = gs::gtx480();
  EXPECT_EQ(conflicts_for(dev, [](std::size_t t) { return t * 2; }), 1u);
}

TEST(BankTracker, UnitStrideDoublesAreBaselineTwoPass) {
  // Doubles occupy two words; a unit-stride warp access takes 2 passes
  // inherently and must be charged zero *extra* serializations.
  const auto dev = gs::gtx480();
  const auto stats = gs::launch(dev, {1, 32}, [&](gs::BlockContext& ctx) {
    auto sh = ctx.shared<double>(4096);
    ctx.phase([&](gs::ThreadCtx& t) {
      (void)t.sload(&sh[static_cast<std::size_t>(t.tid())]);
    });
  });
  EXPECT_EQ(stats.costs.shared_serializations, 0u);
}

TEST(BankTracker, StridedDoublesSerialize) {
  const auto dev = gs::gtx480();
  const auto stats = gs::launch(dev, {1, 32}, [&](gs::BlockContext& ctx) {
    auto sh = ctx.shared<double>(4096);
    ctx.phase([&](gs::ThreadCtx& t) {
      (void)t.sload(&sh[static_cast<std::size_t>(t.tid()) * 16]);  // word stride 32
    });
  });
  // All 32 lanes' first words land in bank 0: 32 distinct words in one
  // bank vs a 2-pass baseline -> 30 extra.
  EXPECT_EQ(stats.costs.shared_serializations, 30u);
}

TEST(BankTracker, SeparateOrdinalsDoNotConflict) {
  // Two sequential accesses by the same lane are different instructions:
  // no cross-ordinal conflicts.
  const auto dev = gs::gtx480();
  const auto stats = gs::launch(dev, {1, 32}, [&](gs::BlockContext& ctx) {
    auto sh = ctx.shared<float>(4096);
    ctx.phase([&](gs::ThreadCtx& t) {
      const auto tid = static_cast<std::size_t>(t.tid());
      (void)t.sload(&sh[tid]);
      (void)t.sload(&sh[tid + 64]);
    });
  });
  EXPECT_EQ(stats.costs.shared_serializations, 0u);
  EXPECT_EQ(stats.costs.shared_accesses, 64u);
}

TEST(CrLayouts, PaddedAndNaiveAgreeNumerically) {
  const auto dev = gs::gtx480();
  auto naive = wl::make_batch<double>(wl::Kind::random_dominant, 8, 500,
                                      td::Layout::contiguous, 3);
  auto padded = naive.clone();
  const auto check = naive.clone();

  gp::CrKernelOptions no_pad;
  gp::CrKernelOptions pad;
  pad.pad_shared = true;
  gp::cr_kernel_solve<double>(dev, naive, no_pad);
  gp::cr_kernel_solve<double>(dev, padded, pad);

  for (std::size_t i = 0; i < naive.total_rows(); ++i) {
    EXPECT_EQ(naive.d()[i], padded.d()[i]) << i;
  }
  // And both match the referee.
  auto ref = check.clone();
  std::vector<double> x(500);
  for (std::size_t m = 0; m < 8; ++m) {
    auto sys = ref.system(m);
    ASSERT_TRUE(
        td::lu_gtsv<double>(sys, td::StridedView<double>(x.data(), 500, 1)).ok());
    for (std::size_t i = 0; i < 500; ++i) {
      EXPECT_NEAR(naive.d()[naive.index(m, i)], x[i], 1e-8);
    }
  }
}

TEST(CrLayouts, PaddingReducesConflictsAndTime) {
  const auto dev = gs::gtx480();
  auto naive = wl::make_batch<double>(wl::Kind::random_dominant, 64, 512,
                                      td::Layout::contiguous, 5);
  auto padded = naive.clone();
  gp::CrKernelOptions no_pad;
  gp::CrKernelOptions pad;
  pad.pad_shared = true;
  const auto sn = gp::cr_kernel_solve<double>(dev, naive, no_pad);
  const auto sp = gp::cr_kernel_solve<double>(dev, padded, pad);
  EXPECT_GT(sn.costs.shared_serializations, 10 * sp.costs.shared_serializations);
  EXPECT_LT(sp.timing.time_us, sn.timing.time_us);
}
