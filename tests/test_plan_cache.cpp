// Plan cache + autotuner contracts (see plan_cache.hpp):
//  * repeated-shape workloads plan once (hits == R - 1, misses == 1);
//  * cache-hit and calibration-file solves are bitwise-identical to cold
//    solves with identical simulated time, for every solver kind;
//  * out-of-range forced k is a structured bad-argument rejection at
//    every layer (plan_hybrid throw, run_solver outcome, resilient
//    degradation) instead of reaching the kernels;
//  * insert()/lookup() shape-check, so a SolvePlan can never apply to a
//    mismatched PlanKey;
//  * planning properties over adversarial shapes (non-power-of-two N,
//    N in {1, 2}, M = 0, huge M).

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "gpu_solvers/autotune.hpp"
#include "gpu_solvers/hybrid_solver.hpp"
#include "gpu_solvers/plan_cache.hpp"
#include "gpu_solvers/registry.hpp"
#include "gpu_solvers/transition.hpp"
#include "gpusim/device_spec.hpp"
#include "obs/metrics.hpp"
#include "tridiag/layout.hpp"
#include "workloads/generators.hpp"

namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;
namespace gp = tridsolve::gpu;
namespace gs = tridsolve::gpusim;
namespace obs = tridsolve::obs;

namespace {

double counter(const char* name) {
  return obs::MetricsRegistry::instance().counter(name);
}

td::SystemBatch<double> make_batch(std::size_t m, std::size_t n,
                                   unsigned seed = 42) {
  return wl::make_batch<double>(wl::Kind::random_dominant, m, n,
                                td::Layout::contiguous, seed);
}

/// Bitwise comparison of two solved batches' solution arrays.
bool bitwise_equal(const td::SystemBatch<double>& a,
                   const td::SystemBatch<double>& b) {
  if (a.d().size() != b.d().size()) return false;
  return std::memcmp(a.d().data(), b.d().data(),
                     a.d().size() * sizeof(double)) == 0;
}

}  // namespace

TEST(PlanCache, RepeatedShapePlansOnce) {
  const auto dev = gs::gtx480();
  gp::PlanCache::instance().clear();
  const auto batch = make_batch(16, 256);
  const double hits0 = counter("gpu.plan_cache.hits");
  const double misses0 = counter("gpu.plan_cache.misses");

  constexpr int kRepeats = 16;
  gp::SolveOutcome first;
  for (int r = 0; r < kRepeats; ++r) {
    const auto out =
        gp::run_solver<double>(gp::SolverKind::hybrid, dev, batch);
    ASSERT_TRUE(out.supported);
    if (r == 0) {
      first = out;
      EXPECT_FALSE(out.plan_cached) << "first solve of a shape must be cold";
    } else {
      EXPECT_TRUE(out.plan_cached);
      EXPECT_DOUBLE_EQ(out.time_us, first.time_us)
          << "cache-hit solve must repeat the cold solve's simulated time";
    }
  }
  EXPECT_EQ(counter("gpu.plan_cache.misses") - misses0, 1.0);
  EXPECT_EQ(counter("gpu.plan_cache.hits") - hits0, kRepeats - 1.0);
}

TEST(PlanCache, CacheHitSolvesBitIdenticalAcrossRegistry) {
  const auto dev = gs::gtx480();
  const auto batch = make_batch(8, 64, 7);
  for (const gp::SolverKind kind : gp::all_solver_kinds()) {
    gp::PlanCache::instance().clear();
    td::SystemBatch<double> cold_sol, hit_sol;
    const auto cold =
        gp::run_solver<double>(kind, dev, batch, {}, &cold_sol);
    if (!cold.supported) continue;  // size cap etc. — nothing to compare
    const auto hit = gp::run_solver<double>(kind, dev, batch, {}, &hit_sol);
    ASSERT_TRUE(hit.supported) << gp::solver_name(kind);
    EXPECT_TRUE(bitwise_equal(cold_sol, hit_sol))
        << gp::solver_name(kind) << ": cache-hit solution drifted";
    EXPECT_DOUBLE_EQ(cold.time_us, hit.time_us) << gp::solver_name(kind);
    EXPECT_EQ(cold.k, hit.k) << gp::solver_name(kind);
  }
}

TEST(PlanCache, CalibrationFileSolvesBitIdenticalToCold) {
  const auto dev = gs::gtx480();
  const std::size_t m = 16, n = 256;
  const auto batch = make_batch(m, n, 9);

  // Cold reference solve (and the plan it used).
  gp::PlanCache::instance().clear();
  td::SystemBatch<double> cold_sol;
  const auto cold = gp::run_solver<double>(gp::SolverKind::hybrid, dev, batch,
                                           {}, &cold_sol);
  ASSERT_TRUE(cold.supported);
  const gp::SolvePlan plan = gp::plan_hybrid(dev, m, n, sizeof(double), {});

  // A calibration file pinning exactly that plan.
  const std::string path = testing::TempDir() + "plan_cache_test.json";
  {
    std::ofstream f(path);
    ASSERT_TRUE(f.good());
    f << "{\"schema\":\"tridsolve-plan-v1\",\"device\":\"" << dev.name
      << "\",\"fingerprint\":\"" << dev.fingerprint() << "\",\"plans\":[{"
      << "\"m\":" << m << ",\"n\":" << n << ",\"elem_size\":8,"
      << "\"k\":" << plan.k << ",\"variant\":\""
      << gp::window_variant_name(plan.variant) << "\",\"c\":" << plan.c
      << ",\"blocks_per_system\":" << plan.blocks_per_system
      << ",\"systems_per_block\":" << plan.systems_per_block
      << ",\"tuned_us\":1.0,\"heuristic_us\":1.0}]}";
  }

  gp::PlanCache::instance().clear();
  ASSERT_EQ(gp::PlanCache::instance().load_calibration(path), 1u);
  td::SystemBatch<double> cal_sol;
  const auto cal = gp::run_solver<double>(gp::SolverKind::hybrid, dev, batch,
                                          {}, &cal_sol);
  ASSERT_TRUE(cal.supported);
  EXPECT_TRUE(cal.plan_cached) << "calibration entry must serve the solve";
  EXPECT_EQ(cal.plan_source, "calibrated");
  EXPECT_TRUE(bitwise_equal(cold_sol, cal_sol));
  EXPECT_DOUBLE_EQ(cold.time_us, cal.time_us);
}

TEST(PlanCache, OutOfRangeForcedKIsStructuredRejection) {
  const auto dev = gs::gtx480();
  // Layer 1: plan_hybrid throws invalid_argument.
  gp::HybridOptions opts;
  opts.force_k = 9;  // 512 > N = 64
  EXPECT_THROW(gp::plan_hybrid(dev, 4, 64, sizeof(double), opts),
               std::invalid_argument);
  opts.force_k = 17;  // over the kernel cap
  EXPECT_THROW(gp::plan_hybrid(dev, 4, 1 << 20, sizeof(double), opts),
               std::invalid_argument);
  opts.force_k = 0;  // k = 0 is always legal (pure p-Thomas)
  EXPECT_EQ(gp::plan_hybrid(dev, 4, 64, sizeof(double), opts).k, 0u);

  // Layer 2: run_solver reports supported = false + bad_argument = true
  // (never an exception, never bad_size — the shape itself is fine).
  const auto batch = make_batch(4, 64);
  gp::SolverRunOptions run;
  run.force_k = 9;
  const auto out = gp::run_solver<double>(gp::SolverKind::hybrid, dev, batch,
                                          run);
  EXPECT_FALSE(out.supported);
  EXPECT_TRUE(out.bad_argument);
  EXPECT_FALSE(out.launch_failed) << "bad argument is not retryable";
  EXPECT_FALSE(out.detail.empty());

  // Layer 3: the resilient pipeline records the bad_argument attempt and
  // degrades down the fallback chain to a full recovery.
  const auto ro = gp::run_solver_resilient<double>(gp::SolverKind::hybrid, dev,
                                                   batch, run);
  EXPECT_TRUE(ro.outcome.supported);
  EXPECT_FALSE(ro.report.partial) << "fallback chain must recover all systems";
  ASSERT_FALSE(ro.report.attempts.empty());
  EXPECT_EQ(ro.report.attempts.front().reason, td::SolveCode::bad_argument);
  EXPECT_GE(ro.report.fallback_stages, 1u);
}

TEST(PlanCache, InsertRejectsMismatchedShapes) {
  auto& cache = gp::PlanCache::instance();
  cache.clear();
  const auto dev = gs::gtx480();
  const double rejected0 = counter("gpu.plan_cache.rejected");

  gp::PlanKey key = gp::make_plan_key(dev, 8, 64, sizeof(double), {});
  gp::SolvePlan plan;
  plan.k = 9;  // 512 > 64: cannot fit the key's shape
  plan.variant = gp::WindowVariant::one_block_per_system;
  EXPECT_FALSE(cache.insert(key, plan));
  EXPECT_EQ(cache.size(), 0u);

  // A forced-k key can only cache a plan honoring that k.
  gp::HybridOptions forced;
  forced.force_k = 4;
  gp::PlanKey fkey = gp::make_plan_key(dev, 8, 64, sizeof(double), forced);
  gp::SolvePlan other;
  other.k = 5;
  other.variant = gp::WindowVariant::one_block_per_system;
  EXPECT_FALSE(cache.insert(fkey, other));

  plan.k = 5;  // 32 <= 64: fits
  EXPECT_TRUE(cache.insert(key, plan));
  EXPECT_EQ(cache.size(), 1u);
  const auto back = cache.lookup(key);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->k, 5u);
  EXPECT_EQ(counter("gpu.plan_cache.rejected") - rejected0, 2.0);
  cache.clear();
}

TEST(PlanCache, CalibrationRejectsWrongSchemaAndUnfitPlans) {
  auto& cache = gp::PlanCache::instance();
  cache.clear();
  const auto dev = gs::gtx480();
  const std::string dir = testing::TempDir();

  {
    std::ofstream f(dir + "bad_schema.json");
    f << "{\"schema\":\"something-else\",\"fingerprint\":\"1\",\"plans\":[]}";
  }
  EXPECT_THROW(cache.load_calibration(dir + "bad_schema.json"),
               std::runtime_error);
  EXPECT_THROW(cache.load_calibration(dir + "does_not_exist.json"),
               std::runtime_error);

  // One fit entry, one whose k cannot fit its n: only the first loads.
  {
    std::ofstream f(dir + "mixed.json");
    f << "{\"schema\":\"tridsolve-plan-v1\",\"device\":\"" << dev.name
      << "\",\"fingerprint\":\"" << dev.fingerprint() << "\",\"plans\":["
      << "{\"m\":8,\"n\":64,\"k\":5,\"variant\":\"one_block_per_system\","
      << "\"c\":1,\"tuned_us\":1.0},"
      << "{\"m\":8,\"n\":64,\"k\":9,\"variant\":\"one_block_per_system\","
      << "\"c\":1,\"tuned_us\":1.0}]}";
  }
  EXPECT_EQ(cache.load_calibration(dir + "mixed.json"), 1u);
  EXPECT_EQ(cache.size(), 1u);
  cache.clear();
}

TEST(PlanCache, ResilientRetriesBitIdenticalColdVsCached) {
  const auto dev = gs::gtx480();
  const auto batch = make_batch(24, 128, 11);

  gp::PlanCache::instance().clear();
  td::SystemBatch<double> cold_sol, hit_sol;
  const auto cold = gp::run_solver_resilient<double>(
      gp::SolverKind::hybrid, dev, batch, {}, {}, &cold_sol);
  const auto hit = gp::run_solver_resilient<double>(
      gp::SolverKind::hybrid, dev, batch, {}, {}, &hit_sol);
  ASSERT_TRUE(cold.outcome.supported);
  ASSERT_TRUE(hit.outcome.supported);
  EXPECT_TRUE(bitwise_equal(cold_sol, hit_sol))
      << "resilient solve with a warm cache drifted from the cold run";
  EXPECT_DOUBLE_EQ(cold.outcome.time_us, hit.outcome.time_us);
  EXPECT_EQ(cold.outcome.k, hit.outcome.k);
}

TEST(PlanCache, OnlineAutotunePlansServeRepeatSolves) {
  const auto dev = gs::gtx480();
  auto& cache = gp::PlanCache::instance();
  cache.clear();
  cache.set_autotune(true);
  const auto batch = make_batch(16, 64, 13);
  const auto first =
      gp::run_solver<double>(gp::SolverKind::hybrid, dev, batch);
  const auto second =
      gp::run_solver<double>(gp::SolverKind::hybrid, dev, batch);
  cache.set_autotune(false);
  cache.clear();
  ASSERT_TRUE(first.supported);
  ASSERT_TRUE(second.supported);
  EXPECT_EQ(first.plan_source, "autotuned");
  EXPECT_FALSE(first.plan_cached);
  EXPECT_TRUE(second.plan_cached);
  EXPECT_EQ(second.plan_source, "autotuned");
  EXPECT_DOUBLE_EQ(first.time_us, second.time_us);
}

TEST(PlanCache, AutotunerNeverLosesToHeuristic) {
  const auto dev = gs::gtx480();
  const std::vector<std::pair<std::size_t, std::size_t>> cells{
      {1, 512}, {16, 256}, {100, 100}, {1024, 128}};
  for (const auto& [m, n] : cells) {
    const auto r = gp::autotune_cell<double>(dev, m, n);
    EXPECT_LE(r.best_us, r.heuristic_us) << "m=" << m << " n=" << n;
    EXPECT_GE(r.candidates.size(), 1u);
    EXPECT_EQ(r.best.source, gp::PlanSource::autotuned);
    EXPECT_TRUE(r.best.fits(n));
  }
  EXPECT_THROW(gp::autotune_cell<double>(dev, 0, 64), std::invalid_argument);
}

TEST(PlanProperties, PlansAlwaysFitAdversarialShapes) {
  const auto dev = gs::gtx480();
  const std::size_t Ms[] = {0, 1, 15, 16, 511, 512, 100001};
  const std::size_t Ns[] = {1, 2, 3, 5, 100, 127, 129, 1000};
  for (const std::size_t m : Ms) {
    for (const std::size_t n : Ns) {
      for (const bool model : {false, true}) {
        gp::HybridOptions o;
        o.use_cost_model = model;
        const auto plan = gp::plan_hybrid(dev, m, n, sizeof(double), o);
        EXPECT_TRUE(plan.fits(n)) << "m=" << m << " n=" << n;
        EXPECT_LE(std::size_t{1} << plan.k, n)
            << "m=" << m << " n=" << n << " model=" << model
            << ": 2^k must never exceed the system size";
        EXPECT_NE(plan.variant, gp::WindowVariant::auto_select);
        EXPECT_GE(plan.c, 1u);
      }
    }
  }
}

TEST(PlanProperties, HeuristicKRespectsItsOwnClamp) {
  const std::size_t Ms[] = {0, 1, 15, 16, 511, 512, 100001};
  const std::size_t Ns[] = {1, 2, 3, 5, 100, 127, 129, 1000};
  for (const std::size_t m : Ms) {
    for (const std::size_t n : Ns) {
      const unsigned k = gp::heuristic_k(m, n);
      EXPECT_TRUE(k == 0 || (std::size_t{1} << k) <= n / 2)
          << "m=" << m << " n=" << n << " k=" << k;
    }
  }
}

TEST(PlanProperties, ClampEventsAreCounted) {
  // heuristic_k(1, 100): Table III says k = 8, but 256 > 100/2 — the
  // fit clamp must fire and be observable.
  const double before = counter("transition.clamped");
  const unsigned k = gp::heuristic_k(1, 100);
  EXPECT_LT(k, 8u);
  EXPECT_GE(counter("transition.clamped") - before, 1.0);
}

TEST(PlanProperties, ForcedKRoundTripsOrThrows) {
  const auto dev = gs::gtx480();
  const std::size_t Ns[] = {1, 2, 64, 100, 1000, 1 << 17};
  for (const std::size_t n : Ns) {
    for (int k = 0; k <= 17; ++k) {
      gp::HybridOptions o;
      o.force_k = k;
      const bool feasible =
          k == 0 ||
          (k <= 16 && (std::size_t{1} << k) <= n &&
           (std::size_t{1} << k) <=
               static_cast<std::size_t>(dev.max_threads_per_block));
      if (feasible) {
        EXPECT_EQ(gp::plan_hybrid(dev, 4, n, sizeof(double), o).k,
                  static_cast<unsigned>(k));
      } else {
        EXPECT_THROW(gp::plan_hybrid(dev, 4, n, sizeof(double), o),
                     std::invalid_argument)
            << "n=" << n << " k=" << k;
      }
    }
  }
}
