// Tests for the fast-path execution engine (gpusim/exec_engine.hpp).
//
// The engine's contract is that none of its fast paths change a reported
// number: parallel block execution and instrumentation sampling must give
// bit-identical LaunchStats and bit-identical solver outputs versus the
// historical serial, fully-instrumented launch. functional_only is the
// one mode allowed to drop numbers — and it must refuse to report timing
// rather than report garbage.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <functional>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "gpu_solvers/registry.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/exec_engine.hpp"
#include "gpusim/launch.hpp"
#include "obs/metrics.hpp"
#include "tridiag/layout.hpp"
#include "workloads/generators.hpp"

namespace gs = tridsolve::gpusim;
namespace gp = tridsolve::gpu;
namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;
namespace obs = tridsolve::obs;

namespace {

void expect_costs_identical(const gs::KernelCosts& a, const gs::KernelCosts& b,
                            const std::string& what) {
  EXPECT_EQ(a.ops_f32, b.ops_f32) << what;
  EXPECT_EQ(a.ops_f64, b.ops_f64) << what;
  EXPECT_EQ(a.transactions, b.transactions) << what;
  EXPECT_EQ(a.bytes_requested, b.bytes_requested) << what;
  EXPECT_EQ(a.loads, b.loads) << what;
  EXPECT_EQ(a.stores, b.stores) << what;
  EXPECT_EQ(a.rounds_total, b.rounds_total) << what;
  EXPECT_EQ(a.warps, b.warps) << what;
  EXPECT_EQ(a.barriers, b.barriers) << what;
  EXPECT_EQ(a.shared_accesses, b.shared_accesses) << what;
  EXPECT_EQ(a.shared_serializations, b.shared_serializations) << what;
  EXPECT_EQ(a.shared_peak_bytes, b.shared_peak_bytes) << what;
}

void expect_stats_identical(const gs::LaunchStats& a, const gs::LaunchStats& b,
                            const std::string& what) {
  expect_costs_identical(a.costs, b.costs, what);
  EXPECT_EQ(a.timed, b.timed) << what;
  EXPECT_EQ(a.timing.time_us, b.timing.time_us) << what;
  EXPECT_EQ(a.timing.compute_us, b.timing.compute_us) << what;
  EXPECT_EQ(a.timing.latency_us, b.timing.latency_us) << what;
  EXPECT_EQ(a.timing.bandwidth_us, b.timing.bandwidth_us) << what;
  EXPECT_EQ(a.timing.overhead_us, b.timing.overhead_us) << what;
  EXPECT_EQ(a.timing.occupancy.blocks_per_sm, b.timing.occupancy.blocks_per_sm)
      << what;
  EXPECT_EQ(a.timing.occupancy.resident_warps_per_sm,
            b.timing.occupancy.resident_warps_per_sm)
      << what;
}

/// A block-homogeneous synthetic kernel: every block streams its own tile
/// through shared memory with identical arithmetic — the shape the
/// sampling estimator is specified for.
gs::LaunchStats run_stream_kernel(const gs::DeviceSpec& dev,
                                  std::vector<double>& data, std::size_t grid,
                                  int threads,
                                  std::optional<gs::InstrumentMode> mode) {
  gs::LaunchConfig cfg;
  cfg.grid_blocks = grid;
  cfg.block_threads = threads;
  cfg.instrument = mode;
  return gs::launch(dev, cfg, [&](gs::BlockContext& ctx) {
    auto tile =
        ctx.shared<double>(static_cast<std::size_t>(ctx.block_threads()));
    ctx.phase([&](gs::ThreadCtx& t) {
      const std::size_t i =
          ctx.block_id() * static_cast<std::size_t>(ctx.block_threads()) +
          static_cast<std::size_t>(t.tid());
      const double v = t.load(&data[i]);
      t.sstore(&tile[t.tid()], v);
      t.flops<double>(2);
      t.end_round();
    });
    ctx.phase([&](gs::ThreadCtx& t) {
      const std::size_t i =
          ctx.block_id() * static_cast<std::size_t>(ctx.block_threads()) +
          static_cast<std::size_t>(t.tid());
      const double v = t.sload(&tile[t.tid()]);
      t.divs<double>(1);
      t.store(&data[i], 2.0 * v + 1.0);
    });
  });
}

std::vector<double> make_data(std::size_t n) {
  std::vector<double> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = 0.25 * static_cast<double>(i % 97) - 3.0;
  }
  return data;
}

/// Counters accumulated by `fn` starting from a clean registry (resetting
/// first keeps double-valued counters exact — subtracting a large running
/// total would round away low bits), minus the names whose values
/// legitimately depend on execution strategy: host wall-clock timers
/// (*.time_us) and the sampling self-check bookkeeping.
std::map<std::string, double> strategy_invariant_metric_delta(
    const std::function<void()>& fn) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();
  fn();
  std::map<std::string, double> delta;
  for (const auto& [name, value] : reg.counters()) {
    if (name.size() >= 7 && name.rfind("time_us") == name.size() - 7) continue;
    if (name.rfind("gpusim.sampling.", 0) == 0) continue;
    // Pooled-scratch and vectorized-twin tallies are execution-strategy
    // telemetry: they vary with worker count and instrument mode by design
    // (more workers -> more pool warm-ups; exact mode takes no twin).
    if (name.rfind("gpusim.scratch.", 0) == 0) continue;
    if (name.rfind("gpusim.vector.", 0) == 0) continue;
    // Plan-cache tallies track process-wide cache warmth, not the strategy
    // under test: the first solve of a shape misses and inserts, repeats hit.
    if (name.rfind("gpu.plan_cache.", 0) == 0) continue;
    if (value != 0.0) delta[name] = value;
  }
  return delta;
}

}  // namespace

TEST(InstrumentMode, ParsesAndNames) {
  EXPECT_EQ(gs::parse_instrument_mode("exact"), gs::InstrumentMode::exact);
  EXPECT_EQ(gs::parse_instrument_mode("sampled"), gs::InstrumentMode::sampled);
  EXPECT_EQ(gs::parse_instrument_mode("functional"),
            gs::InstrumentMode::functional_only);
  EXPECT_EQ(gs::parse_instrument_mode("functional_only"),
            gs::InstrumentMode::functional_only);
  EXPECT_THROW((void)gs::parse_instrument_mode("fast"), std::invalid_argument);
  EXPECT_STREQ(gs::instrument_mode_name(gs::InstrumentMode::exact), "exact");
  EXPECT_STREQ(gs::instrument_mode_name(gs::InstrumentMode::sampled),
               "sampled");
  EXPECT_STREQ(gs::instrument_mode_name(gs::InstrumentMode::functional_only),
               "functional_only");
}

TEST(ExecutionEngine, ThreadCountConfigurable) {
  auto& engine = gs::ExecutionEngine::instance();
  const std::size_t fallback = engine.threads();
  EXPECT_GE(fallback, 1u);
  {
    gs::ScopedSimThreads guard(3);
    EXPECT_EQ(engine.threads(), 3u);
  }
  EXPECT_EQ(engine.threads(), fallback);
  {
    gs::ScopedSimThreads guard(0);  // 0 restores the default
    EXPECT_GE(engine.threads(), 1u);
  }
}

TEST(ExecutionEngine, ParallelExactMatchesSerialExact) {
  const auto dev = gs::gtx480();
  const std::size_t grid = 100;
  const int threads = 64;
  const auto init = make_data(grid * static_cast<std::size_t>(threads));

  // Both runs use the same buffer (restored in place between them):
  // recorded transactions depend on the buffer's alignment, so distinct
  // allocations would not be comparable.
  auto data = init;
  gs::LaunchStats serial;
  {
    gs::ScopedSimThreads guard(1);
    serial = run_stream_kernel(dev, data, grid, threads,
                               gs::InstrumentMode::exact);
  }
  EXPECT_EQ(serial.instrumented_blocks, grid);
  const auto serial_out = data;

  std::copy(init.begin(), init.end(), data.begin());
  gs::LaunchStats parallel;
  {
    gs::ScopedSimThreads guard(8);
    parallel = run_stream_kernel(dev, data, grid, threads,
                                 gs::InstrumentMode::exact);
  }
  EXPECT_EQ(parallel.instrumented_blocks, grid);
  expect_stats_identical(serial, parallel, "1 vs 8 sim threads");
  EXPECT_EQ(data, serial_out);
}

TEST(ExecutionEngine, SampledMatchesExactOnHomogeneousKernel) {
  const auto dev = gs::gtx480();
  const std::size_t grid = 100;
  const int threads = 64;
  const auto init = make_data(grid * static_cast<std::size_t>(threads));

  auto data = init;
  gs::LaunchStats exact;
  {
    gs::ScopedSimThreads guard(1);
    exact = run_stream_kernel(dev, data, grid, threads,
                              gs::InstrumentMode::exact);
  }
  const auto exact_out = data;

  std::copy(init.begin(), init.end(), data.begin());
  gs::LaunchStats sampled;
  {
    gs::ScopedSimThreads guard(8);
    sampled = run_stream_kernel(dev, data, grid, threads,
                                gs::InstrumentMode::sampled);
  }
  // The sample is a strict subset of the grid, yet the scaled costs, the
  // predicted timing and the functional outputs are all bit-identical.
  EXPECT_LT(sampled.instrumented_blocks, grid);
  EXPECT_GE(sampled.instrumented_blocks, 2u);
  expect_stats_identical(exact, sampled, "exact vs sampled");
  EXPECT_EQ(data, exact_out);
}

TEST(ExecutionEngine, SampledCoversSmallGridsExactly) {
  const auto dev = gs::gtx480();
  const std::size_t grid = 8;  // below the sample target: every block records
  const int threads = 32;
  const auto init = make_data(grid * static_cast<std::size_t>(threads));

  auto data = init;
  const auto exact = run_stream_kernel(dev, data, grid, threads,
                                       gs::InstrumentMode::exact);
  const auto exact_out = data;
  std::copy(init.begin(), init.end(), data.begin());
  const auto sampled = run_stream_kernel(dev, data, grid, threads,
                                         gs::InstrumentMode::sampled);
  EXPECT_EQ(sampled.instrumented_blocks, grid);
  expect_stats_identical(exact, sampled, "small-grid sampled");
  EXPECT_EQ(data, exact_out);
}

TEST(ExecutionEngine, FunctionalOnlyComputesButRefusesTiming) {
  const auto dev = gs::gtx480();
  const std::size_t grid = 16;
  const int threads = 32;
  const auto init = make_data(grid * static_cast<std::size_t>(threads));

  auto exact_data = init;
  (void)run_stream_kernel(dev, exact_data, grid, threads,
                          gs::InstrumentMode::exact);

  auto functional_data = init;
  const auto stats = run_stream_kernel(dev, functional_data, grid, threads,
                                       gs::InstrumentMode::functional_only);
  // Outputs are still real...
  EXPECT_EQ(functional_data, exact_data);
  // ...but nothing was recorded and the launch says so.
  EXPECT_FALSE(stats.timed);
  EXPECT_EQ(stats.instrumented_blocks, 0u);
  EXPECT_EQ(stats.costs.transactions, 0u);
  EXPECT_EQ(stats.costs.ops_f64, 0.0);

  gs::Timeline timeline;
  timeline.add("functional", stats);
  EXPECT_FALSE(timeline.timed());
  EXPECT_THROW((void)timeline.total_us(), std::logic_error);
  EXPECT_THROW((void)timeline.time_with_prefix("functional"),
               std::logic_error);
}

TEST(ExecutionEngine, FunctionalOnlyRegistryRunsReportUnsupported) {
  const auto dev = gs::gtx480();
  const auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 64, 512,
                                            td::Layout::contiguous, 11);
  gp::SolverRunOptions opts;
  opts.instrument = gs::InstrumentMode::functional_only;
  for (const auto kind : gp::all_solver_kinds()) {
    const auto outcome = gp::run_solver(kind, dev, batch, opts);
    EXPECT_FALSE(outcome.supported) << gp::solver_name(kind);
    EXPECT_FALSE(outcome.detail.empty()) << gp::solver_name(kind);
  }
}

TEST(ExecutionEngine, RegistryDeterministicAcrossThreadsAndSampling) {
  const auto dev = gs::gtx480();
  // n = 512 keeps every solver in its block-homogeneous regime (Davidson's
  // heterogeneous final kernel only appears past n = 1536); m = 64 avoids
  // the hybrid's split-system variant (taken when m < 2 * num_sms).
  const auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 64, 512,
                                            td::Layout::contiguous, 11);

  struct Strategy {
    const char* name;
    std::size_t threads;
    gs::InstrumentMode mode;
  };
  const Strategy baseline{"exact-serial", 1, gs::InstrumentMode::exact};
  const Strategy variants[] = {
      {"exact-parallel", 8, gs::InstrumentMode::exact},
      {"sampled-serial", 1, gs::InstrumentMode::sampled},
      {"sampled-parallel", 8, gs::InstrumentMode::sampled},
  };

  for (const auto kind : gp::all_solver_kinds()) {
    gp::SolveOutcome base_outcome;
    td::SystemBatch<double> base_solution;
    const auto base_metrics = strategy_invariant_metric_delta([&] {
      gs::ScopedSimThreads guard(baseline.threads);
      gp::SolverRunOptions opts;
      opts.instrument = baseline.mode;
      base_outcome = gp::run_solver(kind, dev, batch, opts, &base_solution);
    });
    ASSERT_TRUE(base_outcome.supported)
        << gp::solver_name(kind) << ": " << base_outcome.detail;

    for (const auto& strat : variants) {
      const std::string what =
          std::string(gp::solver_name(kind)) + " / " + strat.name;
      gp::SolveOutcome outcome;
      td::SystemBatch<double> solution;
      const auto metrics = strategy_invariant_metric_delta([&] {
        gs::ScopedSimThreads guard(strat.threads);
        gp::SolverRunOptions opts;
        opts.instrument = strat.mode;
        outcome = gp::run_solver(kind, dev, batch, opts, &solution);
      });
      ASSERT_TRUE(outcome.supported) << what << ": " << outcome.detail;

      // The reported numbers are bit-identical, not merely close.
      EXPECT_EQ(outcome.time_us, base_outcome.time_us) << what;
      EXPECT_EQ(outcome.launches, base_outcome.launches) << what;

      // So is the solution the solver produced.
      ASSERT_EQ(solution.total_rows(), base_solution.total_rows()) << what;
      for (std::size_t i = 0; i < solution.total_rows(); ++i) {
        ASSERT_EQ(solution.d()[i], base_solution.d()[i])
            << what << " row " << i;
      }

      // And every strategy-invariant metric the run emitted.
      for (const auto& [name, value] : base_metrics) {
        const auto it = metrics.find(name);
        ASSERT_TRUE(it != metrics.end()) << what << " lost " << name;
        EXPECT_EQ(it->second, value)
            << what << " " << name << ": " << std::hexfloat << it->second
            << " vs " << value << std::defaultfloat;
      }
      for (const auto& [name, value] : metrics) {
        EXPECT_TRUE(base_metrics.count(name))
            << what << " gained " << name << " = " << value;
      }
    }
  }
}

TEST(ExecutionEngine, ExactModeSelfCheckPassesOverRegistry) {
  const auto dev = gs::gtx480();
  const auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 64, 512,
                                            td::Layout::contiguous, 11);
  auto& reg = obs::MetricsRegistry::instance();
  const double checks_before = reg.counter("gpusim.sampling.checks");
  const double mismatches_before = reg.counter("gpusim.sampling.mismatches");

  gp::SolverRunOptions opts;
  opts.instrument = gs::InstrumentMode::exact;
  for (const auto kind : gp::all_solver_kinds()) {
    const auto outcome = gp::run_solver(kind, dev, batch, opts);
    EXPECT_TRUE(outcome.supported)
        << gp::solver_name(kind) << ": " << outcome.detail;
  }

  // Every exact launch replayed the sampling estimator against ground
  // truth; on these block-homogeneous kernels it must never disagree.
  EXPECT_GT(reg.counter("gpusim.sampling.checks"), checks_before);
  EXPECT_EQ(reg.counter("gpusim.sampling.mismatches"), mismatches_before);
}
