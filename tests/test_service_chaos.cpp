// Overload and fault hardening for the solve service (docs/SERVICE.md
// § Overload & degradation): bounded admission with shedding policies,
// circuit-breaker trip/probe/reset, launch-failure bisection with
// blast-radius isolation, quarantine of poisoned solos, and the
// structural-validation and shutdown contracts — every staged future
// resolves with a structured code, none lost, under every failure mode.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "gpusim/exec_engine.hpp"
#include "gpusim/fault_injector.hpp"
#include "service/solve_service.hpp"
#include "tridiag/batch_status.hpp"
#include "workloads/traffic.hpp"

using namespace tridsolve;

namespace {

/// A paused service: requests staged before start()/shutdown() are
/// admitted in one deterministic drain (shutdown runs the batcher
/// inline when it was never started).
service::ServiceConfig paused_config() {
  service::ServiceConfig cfg;
  cfg.auto_start = false;
  cfg.batch_window_us = 0.0;
  return cfg;
}

tridiag::TridiagSystem<double> make_system(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  return workloads::make_request_system(workloads::Kind::random_dominant, n,
                                        rng);
}

service::SolveRequest request_for(const tridiag::TridiagSystem<double>& sys) {
  service::SolveRequest req;
  req.system = sys.clone();
  return req;
}

/// A rate-1.0 launch-failure storm: every simulated kernel launch fails
/// while the returned scope is alive (host stages are immune).
gpusim::FaultPlan launch_storm(std::uint64_t seed = 1) {
  gpusim::FaultPlan plan;
  plan.seed = seed;
  plan.rate = 1.0;
  plan.kinds = gpusim::kFaultLaunchFail;
  return plan;
}

/// Entry-only p-Thomas service: one launch per dispatch, no fallback
/// stages, no retries — a failed launch stays failed, which makes the
/// bisection/breaker/quarantine paths deterministic.
service::ServiceConfig entry_only_config() {
  service::ServiceConfig cfg = paused_config();
  cfg.solver = gpu::SolverKind::pthomas_only;
  cfg.max_retries = 0;
  cfg.fallback_chain = {"pthomas"};  // entry token elided: entry-only
  return cfg;
}

}  // namespace

// --- structural config validation -----------------------------------------

TEST(ServiceValidation, ZeroMaxBatchRejectsEverySubmitStructurally) {
  service::ServiceConfig cfg;
  cfg.max_batch = 0;
  service::SolveService svc(cfg);
  EXPECT_FALSE(svc.config_error().empty());
  const auto sys = make_system(32, 3);
  auto fut = svc.submit(request_for(sys));
  const auto r = fut.get();
  EXPECT_EQ(r.code, tridiag::SolveCode::bad_argument);
  ASSERT_EQ(r.x.size(), sys.size());
  for (std::size_t i = 0; i < sys.size(); ++i) {
    EXPECT_EQ(r.x[i], sys.d()[i]) << "rejection must hand back pristine rhs";
  }
  svc.shutdown();  // must be a safe no-op on a rejecting service
}

TEST(ServiceValidation, NegativeWindowAndBadAlphaReject) {
  service::ServiceConfig cfg;
  cfg.batch_window_us = -1.0;
  service::SolveService svc(cfg);
  EXPECT_FALSE(svc.config_error().empty());
  EXPECT_EQ(svc.submit(request_for(make_system(16, 4))).get().code,
            tridiag::SolveCode::bad_argument);

  service::ServiceConfig bad_alpha;
  bad_alpha.admission.ewma_alpha = 0.0;
  service::SolveService svc2(bad_alpha);
  EXPECT_FALSE(svc2.config_error().empty());
}

TEST(ServiceValidation, ZeroShardsClampsAndServes) {
  service::ServiceConfig cfg = paused_config();
  cfg.shards = 0;  // documented clamp, not a rejection
  service::SolveService svc(cfg);
  EXPECT_TRUE(svc.config_error().empty());
  auto fut = svc.submit(request_for(make_system(32, 5)));
  svc.shutdown();
  EXPECT_EQ(fut.get().code, tridiag::SolveCode::ok);
}

TEST(ServiceValidation, ShedPolicyParsingIsStrict) {
  EXPECT_EQ(service::parse_shed_policy("reject-newest"),
            service::ShedPolicy::reject_newest);
  EXPECT_EQ(service::parse_shed_policy("reject_lowest_priority"),
            service::ShedPolicy::reject_lowest_priority);
  EXPECT_EQ(service::parse_shed_policy("brownout"),
            service::ShedPolicy::brownout);
  EXPECT_THROW((void)service::parse_shed_policy("drop-everything"),
               std::invalid_argument);
}

// --- taxonomy --------------------------------------------------------------

TEST(ServiceTaxonomy, OverloadedIsNamedAndRanksBetweenDeadlineAndBadSize) {
  EXPECT_STREQ(tridiag::solve_code_name(tridiag::SolveCode::overloaded),
               "overloaded");
  EXPECT_GT(tridiag::solve_code_severity(tridiag::SolveCode::overloaded),
            tridiag::solve_code_severity(tridiag::SolveCode::deadline));
  EXPECT_LT(tridiag::solve_code_severity(tridiag::SolveCode::overloaded),
            tridiag::solve_code_severity(tridiag::SolveCode::bad_size));
}

// --- admission controller (unit) -------------------------------------------

TEST(AdmissionController, DepthAndByteBoundsAreHardWithRollback) {
  service::AdmissionConfig cfg;
  cfg.max_queue = 2;
  cfg.max_queue_bytes = 1000;
  service::AdmissionController ac(cfg);
  EXPECT_TRUE(ac.try_reserve(400));
  EXPECT_TRUE(ac.try_reserve(400));
  EXPECT_FALSE(ac.try_reserve(400)) << "depth bound";
  ac.release(400);
  EXPECT_FALSE(ac.try_reserve(700)) << "byte bound, rolled back fully";
  EXPECT_EQ(ac.depth(), 1u) << "failed byte reservation must roll back depth";
  EXPECT_TRUE(ac.try_reserve(500));
  EXPECT_EQ(ac.peak_depth(), 2u);
  EXPECT_EQ(ac.bytes(), 900u);
}

TEST(AdmissionController, EwmaAndDelayEstimate) {
  service::AdmissionConfig cfg;
  cfg.ewma_alpha = 0.5;
  service::AdmissionController ac(cfg);
  EXPECT_EQ(ac.estimated_delay_us(8), 0.0) << "no signal before first batch";
  ac.observe_batch_latency(100.0);
  EXPECT_DOUBLE_EQ(ac.ewma_batch_us(), 100.0);
  ac.observe_batch_latency(200.0);
  EXPECT_DOUBLE_EQ(ac.ewma_batch_us(), 150.0);
  // One wave when the queue is empty; depth/max_batch more as it fills.
  EXPECT_DOUBLE_EQ(ac.estimated_delay_us(8), 150.0);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ac.try_reserve(1));
  EXPECT_DOUBLE_EQ(ac.estimated_delay_us(8), 300.0);
}

// --- shedding policies through the service ---------------------------------

TEST(ServiceOverload, RejectNewestShedsExactOverflowWithPristineRhs) {
  service::ServiceConfig cfg = paused_config();
  cfg.admission.max_queue = 3;
  service::SolveService svc(cfg);
  std::vector<tridiag::TridiagSystem<double>> systems;
  std::vector<std::future<service::SolveResult>> futures;
  for (std::uint64_t i = 0; i < 5; ++i) {
    systems.push_back(make_system(32, 100 + i));
    futures.push_back(svc.submit(request_for(systems.back())));
  }
  // The last two could not reserve a slot and must already be resolved.
  EXPECT_EQ(svc.requests_shed(), 2u);
  svc.shutdown();
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto r = futures[i].get();
    if (i < 3) {
      EXPECT_EQ(r.code, tridiag::SolveCode::ok) << "request " << i;
    } else {
      EXPECT_EQ(r.code, tridiag::SolveCode::overloaded) << "request " << i;
      ASSERT_EQ(r.x.size(), systems[i].size());
      for (std::size_t k = 0; k < r.x.size(); ++k) {
        EXPECT_EQ(r.x[k], systems[i].d()[k]);
      }
      EXPECT_EQ(r.batch_id, 0u) << "shed requests never ride a batch";
    }
  }
  EXPECT_LE(svc.peak_queue_depth(), 3u);
}

TEST(ServiceOverload, RejectLowestPriorityEvictsToAdmitPaidTraffic) {
  service::ServiceConfig cfg = paused_config();
  cfg.admission.max_queue = 2;
  cfg.admission.policy = service::ShedPolicy::reject_lowest_priority;
  service::SolveService svc(cfg);

  auto lo1 = request_for(make_system(32, 201));
  auto lo2 = request_for(make_system(32, 202));
  auto hi = request_for(make_system(32, 203));
  lo1.priority = 0;
  lo2.priority = 0;
  hi.priority = 5;
  auto f_lo1 = svc.submit(std::move(lo1));
  auto f_lo2 = svc.submit(std::move(lo2));
  auto f_hi = svc.submit(std::move(hi));  // bound hit: evicts newest prio-0

  EXPECT_EQ(svc.requests_shed(), 1u);
  EXPECT_EQ(f_lo2.wait_for(std::chrono::seconds(0)),
            std::future_status::ready)
      << "the evicted victim must already be resolved";
  EXPECT_EQ(f_lo2.get().code, tridiag::SolveCode::overloaded);
  svc.shutdown();
  EXPECT_EQ(f_lo1.get().code, tridiag::SolveCode::ok);
  EXPECT_EQ(f_hi.get().code, tridiag::SolveCode::ok);
  EXPECT_LE(svc.peak_queue_depth(), 2u);
}

TEST(ServiceOverload, LowerPriorityIncomingIsShedWhenNoVictimRanksBelow) {
  service::ServiceConfig cfg = paused_config();
  cfg.admission.max_queue = 1;
  cfg.admission.policy = service::ShedPolicy::reject_lowest_priority;
  service::SolveService svc(cfg);
  auto queued = request_for(make_system(32, 211));
  queued.priority = 3;
  auto incoming = request_for(make_system(32, 212));
  incoming.priority = 1;  // ranks below the queued request: no eviction
  auto f_q = svc.submit(std::move(queued));
  auto f_in = svc.submit(std::move(incoming));
  EXPECT_EQ(f_in.get().code, tridiag::SolveCode::overloaded);
  svc.shutdown();
  EXPECT_EQ(f_q.get().code, tridiag::SolveCode::ok);
}

TEST(ServiceOverload, BrownoutShedsDeadlineDoomedUpFront) {
  service::ServiceConfig cfg;  // live: a real batch must feed the EWMA
  cfg.batch_window_us = 0.0;
  cfg.admission.policy = service::ShedPolicy::brownout;
  service::SolveService svc(cfg);
  EXPECT_EQ(svc.submit(request_for(make_system(32, 221))).get().code,
            tridiag::SolveCode::ok);
  EXPECT_GT(svc.admission().ewma_batch_us(), 0.0);

  // Estimated queue delay (>= one EWMA batch) dwarfs this deadline: the
  // request could only expire in-queue, so brownout refuses it at submit.
  auto doomed = request_for(make_system(32, 222));
  doomed.deadline_us = 1e-3;
  auto f = svc.submit(std::move(doomed));
  EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f.get().code, tridiag::SolveCode::overloaded);
  EXPECT_EQ(svc.requests_shed(), 1u);
  svc.shutdown();
}

// --- resilient dispatch: bisection, quarantine, provenance ------------------

TEST(ServiceResilience, CleanRunReportsSingleAttemptNoRecovery) {
  service::SolveService svc(paused_config());
  auto fut = svc.submit(request_for(make_system(64, 301)));
  svc.shutdown();
  const auto r = fut.get();
  EXPECT_EQ(r.code, tridiag::SolveCode::ok);
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_FALSE(r.recovered);
  EXPECT_FALSE(r.degraded);
}

TEST(ServiceResilience, FallbackChainRecoversStormWithProvenance) {
  service::SolveService svc(paused_config());  // default chain: host referee
  std::vector<std::future<service::SolveResult>> futures;
  for (std::uint64_t i = 0; i < 4; ++i) {
    futures.push_back(svc.submit(request_for(make_system(64, 310 + i))));
  }
  {
    gpusim::ScopedFaultPlan scoped(launch_storm());
    svc.shutdown();  // drain under the storm: GPU stages fail, host recovers
  }
  for (auto& f : futures) {
    const auto r = f.get();
    EXPECT_EQ(r.code, tridiag::SolveCode::ok);
    EXPECT_TRUE(r.recovered) << "host fallback recovery must be visible";
    EXPECT_GT(r.attempts, 1u);
  }
  EXPECT_EQ(svc.requests_retried(), 4u);
}

// One poisoned launch must not fail co-batched riders: with a one-shot
// pinpoint fault on the very first launch of the drain, the coalesced
// entry dispatch fails, the batch is bisected, and both halves re-solve
// clean from pristine inputs — every rider recovers.
TEST(ServiceResilience, BisectionShieldsRidersFromOnePoisonedLaunch) {
  service::SolveService svc(entry_only_config());
  std::vector<std::future<service::SolveResult>> futures;
  for (std::uint64_t i = 0; i < 4; ++i) {
    futures.push_back(svc.submit(request_for(make_system(64, 320 + i))));
  }
  gpusim::FaultPlan one_shot;
  one_shot.pinpoint = true;
  one_shot.at_launch = 0;  // installing the plan resets the launch ordinal
  one_shot.pinpoint_kind = gpusim::kFaultLaunchFail;
  {
    gpusim::ScopedFaultPlan scoped(one_shot);
    svc.shutdown();
  }
  for (auto& f : futures) {
    const auto r = f.get();
    EXPECT_EQ(r.code, tridiag::SolveCode::ok);
    EXPECT_TRUE(r.recovered);
    EXPECT_EQ(r.attempts, 2u) << "failed coalesced launch + clean half";
  }
  EXPECT_EQ(svc.batches_bisected(), 1u);
  EXPECT_EQ(svc.requests_quarantined(), 0u);
}

TEST(ServiceResilience, PersistentFailuresQuarantineSolosWithPristineRhs) {
  service::SolveService svc(entry_only_config());
  std::vector<tridiag::TridiagSystem<double>> systems;
  std::vector<std::future<service::SolveResult>> futures;
  for (std::uint64_t i = 0; i < 2; ++i) {
    systems.push_back(make_system(64, 330 + i));
    futures.push_back(svc.submit(request_for(systems.back())));
  }
  {
    gpusim::ScopedFaultPlan scoped(launch_storm());
    svc.shutdown();  // pair fails, bisects, solos fail: quarantine both
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto r = futures[i].get();
    EXPECT_EQ(r.code, tridiag::SolveCode::launch_failed);
    ASSERT_EQ(r.x.size(), systems[i].size());
    for (std::size_t k = 0; k < r.x.size(); ++k) {
      EXPECT_EQ(r.x[k], systems[i].d()[k]);
    }
  }
  EXPECT_EQ(svc.requests_quarantined(), 2u);
  EXPECT_GE(svc.batches_bisected(), 1u);
}

// --- circuit breaker --------------------------------------------------------

TEST(ServiceBreaker, TripsOpenDegradesThenProbesAndResets) {
  service::ServiceConfig cfg = entry_only_config();
  cfg.auto_start = true;
  cfg.breaker.threshold = 1;
  cfg.breaker.cooldown_us = 0.0;  // next dispatch is already the probe
  cfg.breaker.degrade = true;
  service::SolveService svc(cfg);

  {
    gpusim::ScopedFaultPlan scoped(launch_storm());
    const auto r = svc.submit(request_for(make_system(64, 341))).get();
    EXPECT_EQ(r.code, tridiag::SolveCode::launch_failed);
  }
  EXPECT_EQ(svc.breaker().state(), service::BreakerState::open);
  EXPECT_EQ(svc.breaker().trips(), 1u);

  // Storm over, cooldown already elapsed: the next dispatch is admitted
  // as a half-open probe, succeeds, and closes the breaker.
  const auto r2 = svc.submit(request_for(make_system(64, 342))).get();
  EXPECT_EQ(r2.code, tridiag::SolveCode::ok);
  EXPECT_FALSE(r2.degraded);
  EXPECT_EQ(svc.breaker().state(), service::BreakerState::closed);
  EXPECT_EQ(svc.breaker().resets(), 1u);
  svc.shutdown();
}

TEST(ServiceBreaker, OpenBreakerDegradesToHostThomas) {
  service::ServiceConfig cfg = entry_only_config();
  cfg.auto_start = true;
  cfg.breaker.threshold = 1;
  cfg.breaker.cooldown_us = 60e6;  // stays open for the whole test
  cfg.breaker.degrade = true;
  service::SolveService svc(cfg);

  {
    gpusim::ScopedFaultPlan scoped(launch_storm());
    (void)svc.submit(request_for(make_system(64, 351))).get();
  }
  EXPECT_EQ(svc.breaker().state(), service::BreakerState::open);
  const auto r = svc.submit(request_for(make_system(64, 352))).get();
  EXPECT_EQ(r.code, tridiag::SolveCode::ok);
  EXPECT_TRUE(r.degraded) << "open breaker solves on the host, marked so";
  EXPECT_EQ(svc.requests_degraded(), 1u);
  svc.shutdown();
}

// Shutdown with the breaker open in shed mode: the staged batch fails,
// trips the breaker mid-bisection, and the re-dispatched halves are shed
// — yet every staged future resolves with a structured code and
// post-shutdown submits are rejected. Nothing hangs, nothing is lost.
TEST(ServiceBreaker, ShutdownWhileOpenResolvesEveryStagedFuture) {
  service::ServiceConfig cfg = entry_only_config();
  cfg.breaker.threshold = 1;
  cfg.breaker.cooldown_us = 60e6;
  cfg.breaker.degrade = false;  // open state sheds instead of degrading
  service::SolveService svc(cfg);

  std::vector<std::future<service::SolveResult>> futures;
  for (std::uint64_t i = 0; i < 3; ++i) {
    futures.push_back(svc.submit(request_for(make_system(64, 360 + i))));
  }
  {
    gpusim::ScopedFaultPlan scoped(launch_storm());
    svc.shutdown();
  }
  std::size_t shed = 0;
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready)
        << "shutdown must resolve every staged future";
    const auto r = f.get();
    EXPECT_TRUE(r.code == tridiag::SolveCode::overloaded ||
                r.code == tridiag::SolveCode::launch_failed)
        << "got " << tridiag::solve_code_name(r.code);
    if (r.code == tridiag::SolveCode::overloaded) ++shed;
  }
  EXPECT_GE(shed, 1u) << "the open breaker must have shed bisected halves";
  EXPECT_GE(svc.breaker().trips(), 1u);

  const auto rejected = svc.submit(request_for(make_system(64, 363))).get();
  EXPECT_EQ(rejected.code, tridiag::SolveCode::bad_argument);
}
