// Thomas algorithm tests: exact small cases, residual-level accuracy on
// every workload class, strided operation, and failure reporting.

#include <gtest/gtest.h>

#include <vector>

#include "tridiag/residual.hpp"
#include "tridiag/thomas.hpp"
#include "tridiag/layout.hpp"
#include "util/aligned_buffer.hpp"
#include "util/stats.hpp"
#include "workloads/generators.hpp"

namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;
using tridsolve::util::AlignedBuffer;
using tridsolve::util::Xoshiro256;

namespace {

td::TridiagSystem<double> small_system() {
  // [2 1 0; 1 3 1; 0 1 2] x = [3; 6; 5] -> x = (1, 1, 2)
  td::TridiagSystem<double> s(3);
  s.a()[0] = 0; s.a()[1] = 1; s.a()[2] = 1;
  s.b()[0] = 2; s.b()[1] = 3; s.b()[2] = 2;
  s.c()[0] = 1; s.c()[1] = 1; s.c()[2] = 0;
  s.d()[0] = 3; s.d()[1] = 6; s.d()[2] = 5;
  return s;
}

}  // namespace

TEST(Thomas, SolvesKnownThreeByThree) {
  auto s = small_system();
  AlignedBuffer<double> x(3);
  const auto st = td::thomas_solve(s.ref(), td::StridedView<double>(x.span()));
  ASSERT_TRUE(st.ok());
  EXPECT_NEAR(x[0], 1.0, 1e-14);
  EXPECT_NEAR(x[1], 1.0, 1e-14);
  EXPECT_NEAR(x[2], 2.0, 1e-14);
}

TEST(Thomas, SizeOneAndTwo) {
  td::TridiagSystem<double> s1(1);
  s1.b()[0] = 4;
  s1.d()[0] = 2;
  AlignedBuffer<double> x1(1);
  ASSERT_TRUE(td::thomas_solve(s1.ref(), td::StridedView<double>(x1.span())).ok());
  EXPECT_DOUBLE_EQ(x1[0], 0.5);

  td::TridiagSystem<double> s2(2);
  s2.a()[1] = 1;
  s2.b()[0] = 2; s2.b()[1] = 2;
  s2.c()[0] = 1;
  s2.d()[0] = 4; s2.d()[1] = 5;  // x = (1, 2)
  AlignedBuffer<double> x2(2);
  ASSERT_TRUE(td::thomas_solve(s2.ref(), td::StridedView<double>(x2.span())).ok());
  EXPECT_NEAR(x2[0], 1.0, 1e-14);
  EXPECT_NEAR(x2[1], 2.0, 1e-14);
}

TEST(Thomas, RecoversManufacturedSolution) {
  Xoshiro256 rng(99);
  td::TridiagSystem<double> s(257);
  wl::fill_matrix(wl::Kind::random_dominant, s.ref(), rng);
  AlignedBuffer<double> x_true(257);
  tridsolve::util::fill_uniform(rng, x_true.span(), -5.0, 5.0);
  wl::fill_rhs_for_solution(s.ref(),
                            td::StridedView<const double>(x_true.data(), 257, 1));
  AlignedBuffer<double> x(257);
  ASSERT_TRUE(td::thomas_solve(s.ref(), td::StridedView<double>(x.span())).ok());
  EXPECT_LT(tridsolve::util::max_abs_diff(x.span(), x_true.span()), 1e-10);
}

TEST(Thomas, ResidualSmallOnAllWorkloadKinds) {
  for (auto kind : {wl::Kind::random_dominant, wl::Kind::toeplitz,
                    wl::Kind::poisson1d, wl::Kind::adi_sweep, wl::Kind::spline}) {
    Xoshiro256 rng(7);
    td::TridiagSystem<double> s(513);
    wl::fill_matrix(kind, s.ref(), rng);
    wl::fill_rhs_random(s.ref(), rng);
    AlignedBuffer<double> x(513);
    ASSERT_TRUE(td::thomas_solve(s.ref(), td::StridedView<double>(x.span())).ok())
        << wl::kind_name(kind);
    EXPECT_LT(td::relative_residual(td::as_const(s.ref()),
                                    td::StridedView<const double>(x.data(), 513, 1)),
              1e-13)
        << wl::kind_name(kind);
  }
}

TEST(Thomas, WorksOnStridedViews) {
  // Solve the same system twice: once contiguous, once embedded at stride 3.
  auto s = small_system();
  AlignedBuffer<double> x_ref(3);
  ASSERT_TRUE(td::thomas_solve(s.ref(), td::StridedView<double>(x_ref.span())).ok());

  AlignedBuffer<double> wide(9 * 4);
  td::SystemRef<double> strided{
      td::StridedView<double>(wide.data() + 0, 3, 3),
      td::StridedView<double>(wide.data() + 9, 3, 3),
      td::StridedView<double>(wide.data() + 18, 3, 3),
      td::StridedView<double>(wide.data() + 27, 3, 3)};
  auto src = small_system();
  for (std::size_t i = 0; i < 3; ++i) {
    strided.a[i] = src.a()[i];
    strided.b[i] = src.b()[i];
    strided.c[i] = src.c()[i];
    strided.d[i] = src.d()[i];
  }
  AlignedBuffer<double> xs(9);
  td::StridedView<double> x_str(xs.data(), 3, 3);
  ASSERT_TRUE(td::thomas_solve(strided, x_str).ok());
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(x_str[i], x_ref[i]);
}

TEST(Thomas, SolutionMayAliasRhs) {
  auto s = small_system();
  auto sys = s.ref();
  ASSERT_TRUE(td::thomas_solve(sys, sys.d).ok());
  EXPECT_NEAR(sys.d[0], 1.0, 1e-14);
  EXPECT_NEAR(sys.d[1], 1.0, 1e-14);
  EXPECT_NEAR(sys.d[2], 2.0, 1e-14);
}

TEST(Thomas, ReportsZeroPivot) {
  td::TridiagSystem<double> s(2);
  s.b()[0] = 0.0;  // immediate zero pivot
  s.c()[0] = 1.0;
  s.a()[1] = 1.0;
  s.b()[1] = 1.0;
  AlignedBuffer<double> x(2);
  const auto st = td::thomas_solve(s.ref(), td::StridedView<double>(x.span()));
  EXPECT_EQ(st.code, td::SolveCode::zero_pivot);
  EXPECT_EQ(st.index, 0u);
}

TEST(Thomas, ReportsBadSize) {
  auto s = small_system();
  AlignedBuffer<double> x(2);  // wrong length
  const auto st = td::thomas_solve(s.ref(), td::StridedView<double>(x.span()));
  EXPECT_EQ(st.code, td::SolveCode::bad_size);
}

TEST(Thomas, EliminationStepFormula) {
  EXPECT_EQ(td::thomas_elimination_steps(0), 0u);
  EXPECT_EQ(td::thomas_elimination_steps(1), 1u);
  EXPECT_EQ(td::thomas_elimination_steps(512), 1023u);
}

TEST(Thomas, FloatPrecisionResidual) {
  Xoshiro256 rng(3);
  td::TridiagSystem<float> s(129);
  wl::fill_matrix(wl::Kind::random_dominant, s.ref(), rng);
  wl::fill_rhs_random(s.ref(), rng);
  AlignedBuffer<float> x(129);
  ASSERT_TRUE(td::thomas_solve(s.ref(), td::StridedView<float>(x.span())).ok());
  EXPECT_LT(td::relative_residual(td::as_const(s.ref()),
                                  td::StridedView<const float>(x.data(), 129, 1)),
            1e-5);
}
